//! The serving engine: sharded worker threads with per-worker scratch
//! caches and same-tree request batching.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use treesched_core::{
    makespan_lower_bound_on, memory_reference, tree_fingerprint, Outcome, OwnedRequest, Platform,
    SchedError, SchedulerRegistry, Scratch, SeqAlgo,
};
use treesched_model::TaskTree;

/// One scheduling request in a serving stream: an owned problem plus the
/// registry name of the scheduler to apply and an optional client tag.
#[derive(Clone, Debug)]
pub struct ServeRequest {
    /// The owned problem (tree behind an [`Arc`], platform, seq, seed).
    pub problem: OwnedRequest,
    /// Registry name or alias of the scheduler to run.
    pub scheduler: String,
    /// Client-chosen tag echoed verbatim into the result.
    pub id: Option<String>,
    /// Timing repetitions: the scheduler runs this many times (at least
    /// once) and [`ServeResult::time_us`] reports the **median** wall-clock
    /// duration. The default `1` adds no repeat work, so cache-counter
    /// expectations are unchanged unless a client opts into timing.
    pub time_reps: u32,
}

impl ServeRequest {
    /// A request with the default sequential sub-algorithm, seed, and no
    /// client tag.
    pub fn new(
        tree: Arc<TaskTree>,
        scheduler: impl Into<String>,
        platform: Platform,
    ) -> ServeRequest {
        ServeRequest {
            problem: OwnedRequest::new(tree, platform),
            scheduler: scheduler.into(),
            id: None,
            time_reps: 1,
        }
    }

    /// Returns the request with a timing repetition count (clamped to at
    /// least one run).
    pub fn with_time_reps(mut self, reps: u32) -> ServeRequest {
        self.time_reps = reps.max(1);
        self
    }

    /// Returns the request with a different sequential sub-algorithm.
    pub fn with_seq(mut self, seq: SeqAlgo) -> ServeRequest {
        self.problem = self.problem.with_seq(seq);
        self
    }

    /// Returns the request with a different randomization seed.
    pub fn with_seed(mut self, seed: u64) -> ServeRequest {
        self.problem = self.problem.with_seed(seed);
        self
    }

    /// Returns the request with a client tag.
    pub fn with_id(mut self, id: impl Into<String>) -> ServeRequest {
        self.id = Some(id.into());
        self
    }
}

/// A successful serve: the full scheduling [`Outcome`] plus the bounds the
/// stable JSON record reports alongside it.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// Schedule, validated evaluation, and diagnostics.
    pub outcome: Outcome,
    /// Makespan lower bound of the request's scenario (speed-aware on
    /// heterogeneous platforms; `max(W/p, CP)` on uniform ones).
    pub ms_lb: f64,
    /// Sequential memory reference (optimal postorder peak) of the tree.
    pub mem_ref: f64,
}

/// The result of one request, tagged with enough context to render the
/// response record without re-reading the request.
#[derive(Clone, Debug)]
pub struct ServeResult {
    /// Submission index (engine-global, monotonically increasing).
    /// [`ServeEngine::drain`] returns results sorted by it.
    pub index: u64,
    /// Client tag of the request, if any.
    pub id: Option<String>,
    /// Canonical scheduler name once resolved; the requested name verbatim
    /// when resolution failed.
    pub scheduler: String,
    /// The request's platform (processor classes + memory domains).
    pub platform: Platform,
    /// Number of tasks of the request's tree.
    pub tasks: usize,
    /// Median wall-clock duration of the scheduler call in microseconds,
    /// over [`ServeRequest::time_reps`] runs (`0` for failed requests).
    pub time_us: u64,
    /// The outcome, or the typed error the scheduler returned.
    pub outcome: Result<ServeOutcome, SchedError>,
}

/// Aggregate engine counters since construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests served (successes and typed failures).
    pub requests: u64,
    /// Same-tree batches dispatched to workers.
    pub batches: u64,
    /// Reference traversals computed across all worker scratches.
    pub traversal_computes: u64,
    /// Traversals answered from warm scratch caches — each one is a full
    /// `O(n log n)` traversal (and its allocations) avoided.
    pub traversal_reuses: u64,
    /// Subtrees scheduled through a borrowed view — each one is a subtree
    /// `TaskTree` clone (and its allocations) avoided.
    pub subtree_views: u64,
    /// Subtrees scheduled through a cloned `TaskTree` (the `LiuExact`
    /// fallback, the only remaining clone path).
    pub subtree_clones: u64,
    /// Requests synthesized as [`SchedError::WorkerLost`] records because
    /// their serving worker died first.
    pub worker_lost: u64,
    /// Batches delivered to a worker other than their fingerprint-preferred
    /// one because the preferred worker was dead.
    pub reroutes: u64,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    batches: AtomicU64,
    traversal_computes: AtomicU64,
    traversal_reuses: AtomicU64,
    subtree_views: AtomicU64,
    subtree_clones: AtomicU64,
    worker_lost: AtomicU64,
    reroutes: AtomicU64,
}

type Batch = Vec<(u64, ServeRequest)>;

/// A long-lived serving engine over a [`SchedulerRegistry`].
///
/// [`ServeEngine::submit`] enqueues requests; [`ServeEngine::drain`] shards
/// the queued window across the worker threads (grouped by tree, routed by
/// tree fingerprint) and blocks until every result is back, returning them
/// in submission order. The engine survives any number of submit/drain
/// cycles; worker caches stay warm across drains because the fingerprint
/// routing always sends a given tree to the same worker.
pub struct ServeEngine {
    txs: Vec<Sender<Batch>>,
    results_rx: Receiver<ServeResult>,
    pending: Vec<ServeRequest>,
    next_index: u64,
    counters: Arc<Counters>,
    handles: Vec<JoinHandle<()>>,
}

impl ServeEngine {
    /// Spawns `workers` worker threads (at least one) over `registry`.
    pub fn new(registry: SchedulerRegistry, workers: usize) -> ServeEngine {
        ServeEngine::with_registry(Arc::new(registry), workers)
    }

    /// As [`ServeEngine::new`], over a shared registry — front-ends that
    /// resolve scheduler names themselves (the campaign runner) keep their
    /// own handle to the same registry the workers serve from.
    pub fn with_registry(registry: Arc<SchedulerRegistry>, workers: usize) -> ServeEngine {
        let workers = workers.max(1);
        let counters = Arc::new(Counters::default());
        let (results_tx, results_rx) = channel();
        let mut txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel::<Batch>();
            let registry = Arc::clone(&registry);
            let results = results_tx.clone();
            let counters = Arc::clone(&counters);
            txs.push(tx);
            handles.push(std::thread::spawn(move || {
                worker_loop(&rx, &registry, &results, &counters)
            }));
        }
        ServeEngine {
            txs,
            results_rx,
            pending: Vec::new(),
            next_index: 0,
            counters,
            handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.txs.len()
    }

    /// Enqueues a request and returns its submission index. Nothing runs
    /// until [`ServeEngine::drain`].
    pub fn submit(&mut self, request: ServeRequest) -> u64 {
        let index = self.next_index;
        self.next_index += 1;
        self.pending.push(request);
        index
    }

    /// Number of requests queued for the next drain.
    pub fn queued(&self) -> usize {
        self.pending.len()
    }

    /// Dispatches every queued request and blocks until all results are
    /// back. Results are sorted by submission index, so for deterministic
    /// schedulers the returned stream does not depend on the worker count.
    ///
    /// Queued requests are grouped by the structural fingerprint of their
    /// tree — one batch per distinct tree, in first-appearance order — and
    /// each batch goes to the worker `fingerprint % workers`, keeping
    /// same-tree traffic on one warm scratch.
    ///
    /// A dead worker (a user scheduler panicked — the built-in schedulers
    /// return typed errors instead) never hangs or fails the drain: batches
    /// routed to it are rerouted to the next live worker, and any batch
    /// that was in flight on it comes back as
    /// [`SchedError::WorkerLost`] records, one per lost request.
    pub fn drain(&mut self) -> Vec<ServeResult> {
        let mut results = Vec::with_capacity(self.pending.len());
        self.drain_with(|r| results.push(r));
        results.sort_by_key(|r| r.index);
        results
    }

    /// Streaming drain: dispatches every queued request and invokes `sink`
    /// once per result **as each completes**, in completion order — not
    /// submission order. [`ServeEngine::drain`] is exactly this plus a
    /// stable sort by [`ServeResult::index`], so a consumer that re-sorts
    /// the streamed results reproduces the batch output bit-for-bit.
    ///
    /// Every submitted request reaches the sink exactly once: a real
    /// result, or a typed [`SchedError::WorkerLost`] record when the
    /// serving worker died first (never both, even when a worker dies
    /// with its last result still queued on the channel).
    pub fn drain_with(&mut self, mut sink: impl FnMut(ServeResult)) {
        let first_index = self.next_index - self.pending.len() as u64;
        let mut batches: Vec<(u64, Batch)> = Vec::new();
        let mut slot_of: HashMap<u64, usize> = HashMap::new();
        for (offset, request) in self.pending.drain(..).enumerate() {
            let fp = tree_fingerprint(&request.problem.tree);
            let job = (first_index + offset as u64, request);
            match slot_of.get(&fp) {
                Some(&slot) => batches[slot].1.push(job),
                None => {
                    slot_of.insert(fp, batches.len());
                    batches.push((fp, vec![job]));
                }
            }
        }
        self.counters
            .batches
            .fetch_add(batches.len() as u64, Ordering::Relaxed);

        // every in-flight request, by index: the worker it went to plus the
        // context needed to synthesize a typed record if that worker dies
        let mut in_flight: HashMap<u64, (usize, LostContext)> = HashMap::new();
        let workers = self.txs.len();
        for (fp, batch) in batches {
            let preferred = (fp % workers as u64) as usize;
            // context is captured before sending: once sent, the requests
            // belong to the worker
            let contexts: Vec<(u64, LostContext)> = batch
                .iter()
                .map(|(index, request)| (*index, LostContext::of(request)))
                .collect();
            let mut batch = batch;
            let mut sent_to = None;
            // reroute to the next live worker when the preferred one died;
            // the cold scratch costs a recompute, not a failure
            for k in 0..workers {
                let w = (preferred + k) % workers;
                if self.handles[w].is_finished() {
                    continue;
                }
                match self.txs[w].send(batch) {
                    Ok(()) => {
                        if w != preferred {
                            self.counters.reroutes.fetch_add(1, Ordering::Relaxed);
                        }
                        sent_to = Some(w);
                        break;
                    }
                    Err(back) => batch = back.0,
                }
            }
            match sent_to {
                Some(w) => {
                    for (index, ctx) in contexts {
                        in_flight.insert(index, (w, ctx));
                    }
                }
                None => {
                    // no live worker at all: the whole batch is lost
                    self.counters
                        .requests
                        .fetch_add(contexts.len() as u64, Ordering::Relaxed);
                    self.counters
                        .worker_lost
                        .fetch_add(contexts.len() as u64, Ordering::Relaxed);
                    for (index, ctx) in contexts {
                        sink(ctx.into_result(index, preferred));
                    }
                }
            }
        }
        while !in_flight.is_empty() {
            // recv() alone would block forever if one of several workers
            // died with results outstanding (the survivors keep the
            // channel open); poll worker liveness and convert a dead
            // worker's in-flight requests into typed records
            match self
                .results_rx
                .recv_timeout(std::time::Duration::from_millis(50))
            {
                Ok(r) => {
                    // only results still tracked pass through: a result
                    // already synthesized as WorkerLost (its worker died
                    // with the real result racing down the channel) must
                    // not reach the sink a second time
                    if in_flight.remove(&r.index).is_some() {
                        sink(r);
                    }
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                    let lost: Vec<u64> = in_flight
                        .iter()
                        .filter(|(_, (w, _))| self.handles[*w].is_finished())
                        .map(|(&index, _)| index)
                        .collect();
                    self.counters
                        .requests
                        .fetch_add(lost.len() as u64, Ordering::Relaxed);
                    self.counters
                        .worker_lost
                        .fetch_add(lost.len() as u64, Ordering::Relaxed);
                    for index in lost {
                        let (worker, ctx) = in_flight.remove(&index).expect("just listed");
                        sink(ctx.into_result(index, worker));
                    }
                    // a disconnect means every worker is gone; the filter
                    // above drains in_flight as their handles finish
                }
            }
        }
    }

    /// Submits every request and drains, in one call.
    pub fn run(&mut self, requests: Vec<ServeRequest>) -> Vec<ServeResult> {
        for r in requests {
            self.submit(r);
        }
        self.drain()
    }

    /// Aggregate counters since construction (all workers, all drains).
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            traversal_computes: self.counters.traversal_computes.load(Ordering::Relaxed),
            traversal_reuses: self.counters.traversal_reuses.load(Ordering::Relaxed),
            subtree_views: self.counters.subtree_views.load(Ordering::Relaxed),
            subtree_clones: self.counters.subtree_clones.load(Ordering::Relaxed),
            worker_lost: self.counters.worker_lost.load(Ordering::Relaxed),
            reroutes: self.counters.reroutes.load(Ordering::Relaxed),
        }
    }
}

/// What [`ServeEngine::drain`] needs to synthesize a typed record for a
/// request whose worker died: the result envelope minus the outcome.
struct LostContext {
    id: Option<String>,
    scheduler: String,
    platform: Platform,
    tasks: usize,
}

impl LostContext {
    fn of(request: &ServeRequest) -> LostContext {
        LostContext {
            id: request.id.clone(),
            scheduler: request.scheduler.clone(),
            platform: request.problem.platform.clone(),
            tasks: request.problem.tree.len(),
        }
    }

    fn into_result(self, index: u64, worker: usize) -> ServeResult {
        ServeResult {
            index,
            id: self.id,
            scheduler: self.scheduler,
            platform: self.platform,
            tasks: self.tasks,
            time_us: 0,
            outcome: Err(SchedError::WorkerLost { worker }),
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.txs.clear(); // closing the channels stops the workers
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(
    rx: &Receiver<Batch>,
    registry: &SchedulerRegistry,
    results: &Sender<ServeResult>,
    counters: &Counters,
) {
    let mut scratch = Scratch::new();
    let mut seen = scratch.stats();
    while let Ok(batch) = rx.recv() {
        // one result message per request, pushed the moment it completes,
        // so a streaming drain observes results mid-batch; the counters
        // are flushed *before* each send, keeping `stats()` exact the
        // instant the final result of a drain is received
        for (index, request) in batch {
            let result = serve_one(registry, &request, &mut scratch, index);
            let now = scratch.stats();
            counters.requests.fetch_add(1, Ordering::Relaxed);
            counters.traversal_computes.fetch_add(
                now.traversal_computes - seen.traversal_computes,
                Ordering::Relaxed,
            );
            counters.traversal_reuses.fetch_add(
                now.traversal_reuses - seen.traversal_reuses,
                Ordering::Relaxed,
            );
            counters
                .subtree_views
                .fetch_add(now.subtree_views - seen.subtree_views, Ordering::Relaxed);
            counters
                .subtree_clones
                .fetch_add(now.subtree_clones - seen.subtree_clones, Ordering::Relaxed);
            seen = now;
            if results.send(result).is_err() {
                return; // engine dropped mid-drain
            }
        }
    }
}

fn serve_one(
    registry: &SchedulerRegistry,
    request: &ServeRequest,
    scratch: &mut Scratch,
    index: u64,
) -> ServeResult {
    let req = request.problem.as_request();
    let tree = req.tree;
    let mut time_us = 0u64;
    let (scheduler, outcome) = match registry.get(&request.scheduler) {
        Ok(s) => {
            let start = std::time::Instant::now();
            let mut outcome = s.schedule(&req, scratch);
            let mut elapsed = start.elapsed().as_micros() as u64;
            if request.time_reps > 1 {
                // median-of-k: rerun on the now-warm scratch and keep the
                // middle sample, so one descheduling blip cannot fail a
                // timing gate
                let mut samples = Vec::with_capacity(request.time_reps as usize);
                samples.push(elapsed);
                for _ in 1..request.time_reps {
                    let start = std::time::Instant::now();
                    outcome = s.schedule(&req, scratch);
                    samples.push(start.elapsed().as_micros() as u64);
                }
                samples.sort_unstable();
                elapsed = samples[samples.len() / 2];
            }
            if outcome.is_ok() {
                time_us = elapsed;
            }
            (s.name().to_string(), outcome)
        }
        Err(e) => (request.scheduler.clone(), Err(e)),
    };
    let outcome = outcome.map(|outcome| {
        // the diagnostics already carry the reference peak when the request
        // used the default traversal; only off-default requests pay for a
        // fresh reference computation
        let mem_ref = match outcome.diagnostics.seq_peak {
            Some(peak) if req.seq == SeqAlgo::default() => peak,
            _ => memory_reference(tree),
        };
        ServeOutcome {
            ms_lb: makespan_lower_bound_on(tree, &req.platform),
            mem_ref,
            outcome,
        }
    });
    ServeResult {
        index,
        id: request.id.clone(),
        scheduler,
        platform: request.problem.platform.clone(),
        tasks: tree.len(),
        time_us,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trees() -> Vec<Arc<TaskTree>> {
        vec![
            Arc::new(TaskTree::fork(8, 1.0, 1.0, 0.0)),
            Arc::new(TaskTree::complete(2, 4, 1.0, 2.0, 0.5)),
            Arc::new(TaskTree::chain(12, 2.0, 1.0, 0.5)),
        ]
    }

    fn mixed_stream() -> Vec<ServeRequest> {
        let trees = trees();
        let mut reqs = Vec::new();
        // interleave trees and schedulers the way real traffic would
        for round in 0..4u64 {
            for (t, tree) in trees.iter().enumerate() {
                for name in ["deepest", "inner", "subtrees", "fifo"] {
                    let p = 2 + ((round as u32 + t as u32) % 3);
                    reqs.push(
                        ServeRequest::new(Arc::clone(tree), name, Platform::new(p))
                            .with_id(format!("r{round}.{t}.{name}")),
                    );
                }
            }
        }
        reqs
    }

    fn fingerprint_of(results: &[ServeResult]) -> Vec<(u64, String, String, f64, f64)> {
        results
            .iter()
            .map(|r| {
                let out = r.outcome.as_ref().expect("stream is error-free");
                (
                    r.index,
                    r.id.clone().unwrap_or_default(),
                    r.scheduler.clone(),
                    out.outcome.eval.makespan,
                    out.outcome.eval.peak_memory,
                )
            })
            .collect()
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let mut engine = ServeEngine::new(SchedulerRegistry::standard(), 3);
        let results = engine.run(mixed_stream());
        assert_eq!(results.len(), 48);
        for (k, r) in results.iter().enumerate() {
            assert_eq!(r.index, k as u64);
        }
    }

    #[test]
    fn output_is_independent_of_worker_count() {
        let reference = {
            let mut engine = ServeEngine::new(SchedulerRegistry::standard(), 1);
            fingerprint_of(&engine.run(mixed_stream()))
        };
        for workers in [2, 4, 7] {
            let mut engine = ServeEngine::new(SchedulerRegistry::standard(), workers);
            let got = fingerprint_of(&engine.run(mixed_stream()));
            assert_eq!(got, reference, "workers = {workers}");
        }
    }

    #[test]
    fn same_tree_requests_form_one_batch_and_reuse_traversals() {
        let mut engine = ServeEngine::new(SchedulerRegistry::standard(), 2);
        let tree = Arc::new(TaskTree::fork(16, 1.0, 1.0, 0.0));
        for p in [1u32, 2, 3, 4, 5, 6] {
            engine.submit(ServeRequest::new(
                Arc::clone(&tree),
                "deepest",
                Platform::new(p),
            ));
        }
        let results = engine.drain();
        assert!(results.iter().all(|r| r.outcome.is_ok()));
        let stats = engine.stats();
        assert_eq!(stats.requests, 6);
        assert_eq!(stats.batches, 1, "one tree, one batch");
        assert_eq!(stats.traversal_computes, 1, "computed once per batch");
        assert_eq!(stats.traversal_reuses, 5);
    }

    #[test]
    fn sharding_keeps_tree_affinity_across_drains() {
        // same tree drained twice: the second drain must still hit the
        // first drain's warm cache (fingerprint routing is stable)
        let mut engine = ServeEngine::new(SchedulerRegistry::standard(), 4);
        let tree = Arc::new(TaskTree::complete(2, 5, 1.0, 1.0, 0.0));
        for _ in 0..2 {
            for p in [2u32, 4] {
                engine.submit(ServeRequest::new(
                    Arc::clone(&tree),
                    "inner",
                    Platform::new(p),
                ));
            }
            let results = engine.drain();
            assert!(results.iter().all(|r| r.outcome.is_ok()));
        }
        let stats = engine.stats();
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.batches, 2, "one batch per drain");
        assert_eq!(
            stats.traversal_computes, 1,
            "second drain reuses the first drain's cache"
        );
    }

    #[test]
    fn equal_trees_in_different_arcs_share_a_batch() {
        let mut engine = ServeEngine::new(SchedulerRegistry::standard(), 2);
        let a = Arc::new(TaskTree::fork(8, 1.0, 1.0, 0.0));
        let b = Arc::new(TaskTree::fork(8, 1.0, 1.0, 0.0));
        engine.submit(ServeRequest::new(a, "deepest", Platform::new(2)));
        engine.submit(ServeRequest::new(b, "deepest", Platform::new(4)));
        engine.drain();
        assert_eq!(engine.stats().batches, 1, "structural identity batches");
        assert_eq!(engine.stats().traversal_computes, 1);
    }

    #[test]
    fn errors_are_data_not_panics() {
        let mut engine = ServeEngine::new(SchedulerRegistry::standard(), 2);
        let tree = Arc::new(TaskTree::fork(4, 1.0, 1.0, 0.0));
        engine.submit(ServeRequest::new(
            Arc::clone(&tree),
            "nosuch",
            Platform::new(2),
        ));
        engine.submit(ServeRequest::new(
            Arc::clone(&tree),
            "membound", // needs a cap it does not get
            Platform::new(2),
        ));
        engine.submit(ServeRequest::new(tree, "deepest", Platform::new(0)));
        let results = engine.drain();
        assert!(matches!(
            results[0].outcome,
            Err(SchedError::UnknownScheduler { .. })
        ));
        assert_eq!(results[0].scheduler, "nosuch", "requested name echoed");
        assert!(matches!(
            results[1].outcome,
            Err(SchedError::MissingMemoryCap { .. })
        ));
        assert!(matches!(results[2].outcome, Err(SchedError::NoProcessors)));
    }

    #[test]
    fn result_bounds_match_the_one_shot_path() {
        let tree = Arc::new(TaskTree::complete(3, 3, 1.0, 2.0, 0.5));
        let mut engine = ServeEngine::new(SchedulerRegistry::standard(), 1);
        engine.submit(
            ServeRequest::new(Arc::clone(&tree), "subtrees", Platform::new(4)).with_seq(
                SeqAlgo::LiuExact, // off-default: mem_ref still the reference
            ),
        );
        engine.submit(ServeRequest::new(
            Arc::clone(&tree),
            "subtrees",
            Platform::new(4),
        ));
        let results = engine.drain();
        for r in &results {
            let out = r.outcome.as_ref().unwrap();
            assert_eq!(out.ms_lb, treesched_core::makespan_lower_bound(&tree, 4));
            assert_eq!(out.mem_ref, memory_reference(&tree));
            assert!(out.outcome.eval.makespan >= out.ms_lb);
        }
    }

    /// A scheduler that panics when the tree has exactly `trigger` tasks
    /// and otherwise delegates to `deepest` — for killing workers on cue.
    struct Panicky {
        trigger: usize,
    }
    impl treesched_core::Scheduler for Panicky {
        fn name(&self) -> &'static str {
            "Panicky"
        }
        fn schedule(
            &self,
            req: &treesched_core::Request<'_>,
            s: &mut Scratch,
        ) -> Result<Outcome, SchedError> {
            if req.tree.len() == self.trigger {
                panic!("scheduler bug")
            }
            SchedulerRegistry::standard()
                .get("deepest")
                .expect("built-in")
                .schedule(req, s)
        }
    }

    fn panicky_registry(trigger: usize) -> SchedulerRegistry {
        let mut registry = SchedulerRegistry::standard();
        registry
            .register(Box::new(Panicky { trigger }), &[], false)
            .unwrap();
        registry
    }

    #[test]
    fn a_panicking_scheduler_becomes_a_typed_record_not_a_hang() {
        // the built-in schedulers never panic, but the registry is open to
        // user schedulers; a dead worker among live ones must surface as a
        // WorkerLost record for the lost batch, not a deadlock on the
        // results channel and not a drain-wide panic
        let mut engine = ServeEngine::new(panicky_registry(5), 4);
        let bad = Arc::new(TaskTree::fork(4, 1.0, 1.0, 0.0)); // 5 tasks: boom
                                                              // pick a good tree routed to a different worker than the doomed one,
                                                              // so its batch cannot be queued behind the panic
        let good = [
            TaskTree::fork(7, 1.0, 1.0, 0.0),
            TaskTree::fork(8, 1.0, 1.0, 0.0),
            TaskTree::chain(9, 1.0, 1.0, 0.0),
        ]
        .into_iter()
        .map(Arc::new)
        .find(|t| tree_fingerprint(t) % 4 != tree_fingerprint(&bad) % 4)
        .expect("some tree routes elsewhere");
        engine.submit(ServeRequest::new(bad, "Panicky", Platform::new(2)).with_id("doomed"));
        engine.submit(ServeRequest::new(
            Arc::clone(&good),
            "deepest",
            Platform::new(2),
        ));
        let results = engine.drain();
        assert_eq!(results.len(), 2);
        assert!(matches!(
            results[0].outcome,
            Err(SchedError::WorkerLost { .. })
        ));
        assert_eq!(results[0].id.as_deref(), Some("doomed"));
        assert_eq!(results[0].scheduler, "Panicky");
        assert_eq!(results[0].tasks, 5);
        assert!(results[1].outcome.is_ok(), "the rest of the stream serves");
        assert_eq!(engine.stats().requests, 2);
    }

    #[test]
    fn batches_reroute_around_a_dead_worker_on_later_drains() {
        // first drain kills one worker; later drains must keep serving
        // every tree — including trees whose fingerprint routes to the dead
        // worker — by rerouting to a live one
        let mut engine = ServeEngine::new(panicky_registry(5), 2);
        let bad = Arc::new(TaskTree::fork(4, 1.0, 1.0, 0.0));
        engine.submit(ServeRequest::new(bad, "Panicky", Platform::new(2)));
        let first = engine.drain();
        assert!(matches!(
            first[0].outcome,
            Err(SchedError::WorkerLost { .. })
        ));
        // both these trees can only route to worker 0 or 1; one of those is
        // dead now, so at least one batch exercises the reroute path
        let trees = [
            Arc::new(TaskTree::fork(7, 1.0, 1.0, 0.0)),
            Arc::new(TaskTree::chain(9, 1.0, 1.0, 0.0)),
        ];
        for round in 0..2 {
            for tree in &trees {
                engine.submit(
                    ServeRequest::new(Arc::clone(tree), "deepest", Platform::new(2))
                        .with_id(format!("r{round}")),
                );
            }
            let results = engine.drain();
            assert_eq!(results.len(), 2);
            for r in &results {
                assert!(r.outcome.is_ok(), "round {round}: {:?}", r.outcome);
            }
        }
    }

    #[test]
    fn all_workers_dead_fails_every_request_as_data() {
        let mut engine = ServeEngine::new(panicky_registry(5), 1);
        let bad = Arc::new(TaskTree::fork(4, 1.0, 1.0, 0.0));
        engine.submit(ServeRequest::new(bad, "Panicky", Platform::new(2)));
        let first = engine.drain();
        assert!(matches!(
            first[0].outcome,
            Err(SchedError::WorkerLost { worker: 0 })
        ));
        // the only worker is gone: requests still come back, as data
        let tree = Arc::new(TaskTree::fork(7, 1.0, 1.0, 0.0));
        engine.submit(ServeRequest::new(tree, "deepest", Platform::new(2)));
        let second = engine.drain();
        assert_eq!(second.len(), 1);
        assert!(matches!(
            second[0].outcome,
            Err(SchedError::WorkerLost { .. })
        ));
    }

    #[test]
    fn streaming_drain_resorted_matches_batch_drain() {
        let reference: Vec<String> = {
            let mut engine = ServeEngine::new(SchedulerRegistry::standard(), 3);
            engine
                .run(mixed_stream())
                .iter()
                .map(crate::jsonl::result_json)
                .collect()
        };
        let mut engine = ServeEngine::new(SchedulerRegistry::standard(), 3);
        for r in mixed_stream() {
            engine.submit(r);
        }
        let mut streamed: Vec<ServeResult> = Vec::new();
        engine.drain_with(|r| streamed.push(r));
        streamed.sort_by_key(|r| r.index);
        let got: Vec<String> = streamed.iter().map(crate::jsonl::result_json).collect();
        assert_eq!(got, reference);
    }

    /// Kill a worker mid-stream: the streaming drain still delivers every
    /// submitted index exactly once — the doomed request as a typed
    /// `WorkerLost` record, everything else as a real result.
    #[test]
    fn streaming_drain_delivers_every_index_exactly_once_past_a_dead_worker() {
        let mut engine = ServeEngine::new(panicky_registry(5), 3);
        let bad = Arc::new(TaskTree::fork(4, 1.0, 1.0, 0.0)); // 5 tasks: boom
        let good = trees();
        let mut submitted = Vec::new();
        for round in 0..3u64 {
            for (t, tree) in good.iter().enumerate() {
                submitted.push(
                    engine.submit(
                        ServeRequest::new(Arc::clone(tree), "deepest", Platform::new(2))
                            .with_id(format!("ok{round}.{t}")),
                    ),
                );
            }
            if round == 1 {
                submitted.push(
                    engine.submit(
                        ServeRequest::new(Arc::clone(&bad), "Panicky", Platform::new(2))
                            .with_id("doomed"),
                    ),
                );
            }
        }
        let mut counts: HashMap<u64, usize> = HashMap::new();
        let mut lost = 0usize;
        engine.drain_with(|r| {
            *counts.entry(r.index).or_default() += 1;
            if matches!(r.outcome, Err(SchedError::WorkerLost { .. })) {
                lost += 1;
                assert_eq!(r.id.as_deref(), Some("doomed"));
            } else {
                assert!(r.outcome.is_ok(), "{:?}", r.outcome);
            }
        });
        assert_eq!(counts.len(), submitted.len(), "every index delivered");
        for index in &submitted {
            assert_eq!(counts.get(index), Some(&1), "index {index} exactly once");
        }
        assert_eq!(lost, 1, "exactly the doomed request is lost");
    }

    #[test]
    fn time_us_is_measured_and_repetitions_keep_results_stable() {
        let mut engine = ServeEngine::new(SchedulerRegistry::standard(), 1);
        let tree = Arc::new(TaskTree::complete(2, 6, 1.0, 2.0, 0.5));
        engine.submit(ServeRequest::new(
            Arc::clone(&tree),
            "deepest",
            Platform::new(4),
        ));
        engine.submit(
            ServeRequest::new(Arc::clone(&tree), "deepest", Platform::new(4)).with_time_reps(5),
        );
        let results = engine.drain();
        let once = results[0].outcome.as_ref().unwrap();
        let timed = results[1].outcome.as_ref().unwrap();
        assert_eq!(
            once.outcome.eval.makespan, timed.outcome.eval.makespan,
            "timing repetitions must not change the schedule"
        );
        // failed requests report no duration
        let mut engine = ServeEngine::new(SchedulerRegistry::standard(), 1);
        let tree = Arc::new(TaskTree::fork(4, 1.0, 1.0, 0.0));
        engine.submit(ServeRequest::new(tree, "nosuch", Platform::new(2)).with_time_reps(3));
        let results = engine.drain();
        assert!(results[0].outcome.is_err());
        assert_eq!(results[0].time_us, 0);
    }

    #[test]
    fn heterogeneous_platforms_stream_through_the_engine() {
        use treesched_core::ProcClass;
        let tree = Arc::new(TaskTree::complete(2, 5, 1.0, 2.0, 0.5));
        let het = Platform::heterogeneous(vec![ProcClass::new(2, 2.0), ProcClass::new(2, 1.0)])
            .with_domain(1e9, &[0])
            .with_domain(1e9, &[1]);
        let stream = |platform: &Platform| -> Vec<ServeRequest> {
            ["deepest", "inner", "fifo", "subtrees"]
                .iter()
                .map(|name| ServeRequest::new(Arc::clone(&tree), *name, platform.clone()))
                .collect()
        };
        let run = |workers: usize| {
            let mut engine = ServeEngine::new(SchedulerRegistry::standard(), workers);
            engine.run(stream(&het))
        };
        let results = run(1);
        for r in &results {
            let out = r.outcome.as_ref().expect("every scheduler serves het");
            assert_eq!(out.ms_lb, makespan_lower_bound_on(&tree, &het));
            assert_eq!(out.outcome.domain_peaks.len(), 2);
            assert_eq!(r.platform, het);
        }
        // comm-bearing platforms stream too: list schedulers serve them,
        // subtree placement refuses as data, not a panic
        let comm = het.clone().with_comm(vec![0.0, 2.0, 2.0, 0.0]);
        let mut engine = ServeEngine::new(SchedulerRegistry::standard(), 1);
        let comm_results = engine.run(stream(&comm));
        for r in &comm_results[..3] {
            let out = r.outcome.as_ref().expect("list schedulers serve comm");
            assert_eq!(out.ms_lb, makespan_lower_bound_on(&tree, &comm));
        }
        assert!(matches!(
            comm_results[3].outcome,
            Err(SchedError::UnsupportedPlatform { .. })
        ));
        // worker-count independence holds for heterogeneous streams too
        let again: Vec<String> = run(4).iter().map(crate::jsonl::result_json).collect();
        let reference: Vec<String> = results.iter().map(crate::jsonl::result_json).collect();
        assert_eq!(again, reference);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let mut engine = ServeEngine::new(SchedulerRegistry::standard(), 0);
        assert_eq!(engine.workers(), 1);
        assert!(engine.drain().is_empty(), "empty drain is fine");
        let tree = Arc::new(TaskTree::chain(3, 1.0, 1.0, 0.0));
        engine.submit(ServeRequest::new(tree, "fifo", Platform::new(1)));
        assert_eq!(engine.queued(), 1);
        assert_eq!(engine.drain().len(), 1);
        assert_eq!(engine.queued(), 0);
    }
}
