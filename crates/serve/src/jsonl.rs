//! The serving wire protocol: one JSON object per line.
//!
//! **Requests** (in): `tree` (path to a `treesched tree v1` file) is
//! required, plus a platform — either the flat legacy fields `processors`
//! (+ optional `cap`), or a nested `platform` object of processor classes
//! and memory domains; `id`, `scheduler`, `seq` (`best|naive|liu`) and
//! `seed` are optional:
//!
//! ```json
//! {"id":"r1","tree":"fork.tree","scheduler":"deepest","processors":4}
//! {"id":"r2","tree":"fork.tree","scheduler":"deepest","platform":
//!   {"classes":[{"count":2,"speed":2},{"count":2,"speed":1}],
//!    "domains":[{"capacity":64,"classes":[0]},{"capacity":64,"classes":[1]}]}}
//! ```
//!
//! **Responses** (out) reuse the field conventions of the CLI's
//! `schedule --json` record — same keys, same order, numbers in Rust
//! `Display` form, absent values as `null` — prefixed with the echoed
//! `id`. Flat-platform responses are byte-identical to the pre-platform
//! protocol; heterogeneous responses additionally carry the `platform`
//! object (after `processors`) and per-domain peaks (`domain_peaks`, last):
//!
//! ```json
//! {"id":"r1","scheduler":"ParDeepestFirst","processors":4,"tasks":7,...}
//! ```
//!
//! Failed requests produce `{"id":...,"error":"..."}` instead, so a
//! response line is a success record exactly when it has no `error` key.
//!
//! The parser accepts full JSON values (objects and arrays included) but
//! requests use nesting only for the `platform` object. The crate stays
//! dependency-free — any JSON tooling can produce and consume the stream.

use treesched_core::{MemDomain, Platform, ProcClass, SeqAlgo};

/// One parsed value of a JSON object.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A JSON string, unescaped.
    Str(String),
    /// A JSON number, kept as its raw token so integers survive exactly.
    Num(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
    /// A nested object, key order preserved.
    Obj(Vec<(String, Value)>),
    /// A nested array.
    Arr(Vec<Value>),
}

/// Parses one line as a JSON object, preserving key order.
pub fn parse_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let pairs = p.object()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the object"));
    }
    Ok(pairs)
}

/// Nesting bound for untrusted request lines: a `platform` object needs
/// depth 4; anything deeper is garbage, not a legal request.
const MAX_DEPTH: usize = 16;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn object(&mut self) -> Result<Vec<(String, Value)>, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(pairs);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.next() {
                Some(b',') => continue,
                Some(b'}') => return Ok(pairs),
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Vec<Value>, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(items);
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.next() {
                Some(b',') => continue,
                Some(b']') => return Ok(items),
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        if self.next() == Some(want) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected `{}`", want as char)))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = self.hex4()?;
                        let code = match hex {
                            // high surrogate: JSON encodes astral-plane
                            // characters as a \uXXXX\uXXXX pair
                            0xd800..=0xdbff => {
                                if self.next() != Some(b'\\') || self.next() != Some(b'u') {
                                    return Err(self.err("unpaired \\u surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xdc00..=0xdfff).contains(&low) {
                                    return Err(self.err("unpaired \\u surrogate"));
                                }
                                0x10000 + ((hex - 0xd800) << 10) + (low - 0xdc00)
                            }
                            0xdc00..=0xdfff => return Err(self.err("unpaired \\u surrogate")),
                            c => c,
                        };
                        out.push(char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?);
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // multi-byte UTF-8: copy the full sequence verbatim
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    /// Reads the 4 hex digits of a `\u` escape.
    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(hex)
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'{') => {
                self.descend()?;
                let obj = self.object()?;
                self.depth -= 1;
                Ok(Value::Obj(obj))
            }
            Some(b'[') => {
                self.descend()?;
                let arr = self.array()?;
                self.depth -= 1;
                Ok(Value::Arr(arr))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
                ) {
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
                raw.parse::<f64>()
                    .map_err(|_| self.err(&format!("bad number `{raw}`")))?;
                Ok(Value::Num(raw.to_string()))
            }
            _ => Err(self.err("expected a value")),
        }
    }

    fn descend(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("value nested too deeply"));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }
}

/// Escapes `s` as the contents of a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Platform wire format
// ---------------------------------------------------------------------------

/// Renders `platform` as its wire object:
/// `{"classes":[{"count":..,"speed":..},..],"domains":[{"capacity":..,"classes":[..]},..],"comm":[..]}`
/// (`domains` omitted when empty; `comm` — the flattened domains×domains
/// transfer-cost matrix — omitted when absent or all-zero, so comm-free
/// platforms keep their historical byte-exact rendering).
/// [`platform_from_value`] parses it back.
pub fn platform_json(platform: &Platform) -> String {
    let mut s = String::from("{\"classes\":[");
    for (k, c) in platform.classes().iter().enumerate() {
        if k > 0 {
            s.push(',');
        }
        s.push_str(&format!("{{\"count\":{},\"speed\":{}}}", c.count, c.speed));
    }
    s.push(']');
    if !platform.domains().is_empty() {
        s.push_str(",\"domains\":[");
        for (k, d) in platform.domains().iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            let classes: Vec<String> = d.classes.iter().map(|c| c.to_string()).collect();
            s.push_str(&format!(
                "{{\"capacity\":{},\"classes\":[{}]}}",
                d.capacity,
                classes.join(",")
            ));
        }
        s.push(']');
    }
    if platform.has_comm() {
        let costs: Vec<String> = platform.comm().iter().map(|c| c.to_string()).collect();
        s.push_str(&format!(",\"comm\":[{}]", costs.join(",")));
    }
    s.push('}');
    s
}

fn num_field<T: std::str::FromStr>(v: &Value, what: &str) -> Result<T, String> {
    match v {
        Value::Num(raw) => raw
            .parse()
            .map_err(|_| format!("`{what}` must be a number of the right kind, got `{raw}`")),
        other => Err(format!("`{what}` must be a number, got {other:?}")),
    }
}

/// Parses a `platform` wire object (see [`platform_json`]) into a
/// [`Platform`]. Structural errors only — invariant checking (speeds,
/// domain shapes) stays with [`Platform::validate`] downstream.
pub fn platform_from_value(value: &Value) -> Result<Platform, String> {
    let Value::Obj(pairs) = value else {
        return Err(format!("`platform` must be an object, got {value:?}"));
    };
    let mut classes: Option<Vec<ProcClass>> = None;
    let mut domains: Vec<MemDomain> = Vec::new();
    let mut comm: Vec<f64> = Vec::new();
    for (key, v) in pairs {
        match (key.as_str(), v) {
            ("classes", Value::Arr(items)) => {
                let mut parsed = Vec::with_capacity(items.len());
                for item in items {
                    let Value::Obj(fields) = item else {
                        return Err(format!(
                            "each platform class must be an object, got {item:?}"
                        ));
                    };
                    let mut count: Option<u32> = None;
                    let mut speed = 1.0f64;
                    for (k, v) in fields {
                        match k.as_str() {
                            "count" => count = Some(num_field(v, "count")?),
                            "speed" => speed = num_field(v, "speed")?,
                            other => return Err(format!("unknown platform class key `{other}`")),
                        }
                    }
                    let count = count.ok_or("platform class needs a `count`")?;
                    parsed.push(ProcClass::new(count, speed));
                }
                classes = Some(parsed);
            }
            ("domains", Value::Arr(items)) => {
                for item in items {
                    let Value::Obj(fields) = item else {
                        return Err(format!(
                            "each platform domain must be an object, got {item:?}"
                        ));
                    };
                    let mut capacity: Option<f64> = None;
                    let mut members: Vec<usize> = Vec::new();
                    for (k, v) in fields {
                        match (k.as_str(), v) {
                            ("capacity", v) => capacity = Some(num_field(v, "capacity")?),
                            ("classes", Value::Arr(ids)) => {
                                for id in ids {
                                    members.push(num_field(id, "domain class index")?);
                                }
                            }
                            ("classes", v) => {
                                return Err(format!("domain `classes` must be an array, got {v:?}"))
                            }
                            (other, _) => {
                                return Err(format!("unknown platform domain key `{other}`"))
                            }
                        }
                    }
                    domains.push(MemDomain {
                        capacity: capacity.ok_or("platform domain needs a `capacity`")?,
                        classes: members,
                    });
                }
            }
            ("comm", Value::Arr(items)) => {
                for item in items {
                    comm.push(num_field(item, "comm cost")?);
                }
            }
            ("classes", v) => {
                return Err(format!("platform `classes` must be an array, got {v:?}"))
            }
            ("domains", v) => {
                return Err(format!("platform `domains` must be an array, got {v:?}"))
            }
            ("comm", v) => return Err(format!("platform `comm` must be an array, got {v:?}")),
            (other, _) => return Err(format!("unknown platform key `{other}`")),
        }
    }
    let classes = classes.ok_or("platform needs a `classes` array")?;
    let mut platform = Platform::heterogeneous(classes);
    for d in domains {
        platform = platform.with_domain(d.capacity, &d.classes);
    }
    if !comm.is_empty() {
        platform = platform.with_comm(comm);
    }
    Ok(platform)
}

// ---------------------------------------------------------------------------
// Request records
// ---------------------------------------------------------------------------

/// How a request line spelled its platform.
#[derive(Clone, Debug, PartialEq)]
pub enum PlatformSpec {
    /// The flat legacy fields: `processors` plus optional `cap`.
    Flat {
        /// Processor count (`processors`, ≥ 1 checked downstream).
        processors: u32,
        /// Shared memory cap (`cap`, optional).
        cap: Option<f64>,
    },
    /// The nested `platform` object.
    Explicit(Platform),
}

impl PlatformSpec {
    /// The platform this spec describes.
    pub fn to_platform(&self) -> Platform {
        match self {
            PlatformSpec::Flat { processors, cap } => {
                let platform = Platform::new(*processors);
                match cap {
                    Some(cap) => platform.with_memory_cap(*cap),
                    None => platform,
                }
            }
            PlatformSpec::Explicit(platform) => platform.clone(),
        }
    }
}

/// One parsed request line of the serving protocol.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestRecord {
    /// Client tag echoed into the response (`id`, optional).
    pub id: Option<String>,
    /// Path to the tree file (`tree`, required).
    pub tree: String,
    /// Scheduler registry name or alias (`scheduler`, optional — the
    /// engine front-end supplies its default).
    pub scheduler: Option<String>,
    /// The requested platform: flat `processors`/`cap` fields or a nested
    /// `platform` object. `None` when the line carried neither — the
    /// front-end decides whether a default platform applies or the request
    /// is an error.
    pub platform: Option<PlatformSpec>,
    /// Sequential sub-algorithm (`seq`: `best|naive|liu`, optional).
    pub seq: Option<SeqAlgo>,
    /// Seed for randomized schedulers (`seed`, optional).
    pub seed: Option<u64>,
}

impl RequestRecord {
    /// Parses one request line. Unknown keys are rejected — silently
    /// ignoring a typo like `"processor"` would serve the wrong request.
    pub fn parse(line: &str) -> Result<RequestRecord, String> {
        let pairs = parse_object(line)?;
        let mut rec = RequestRecord {
            id: None,
            tree: String::new(),
            scheduler: None,
            platform: None,
            seq: None,
            seed: None,
        };
        let mut saw_tree = false;
        let mut processors: Option<u32> = None;
        let mut cap: Option<f64> = None;
        let mut explicit: Option<Platform> = None;
        for (key, value) in pairs {
            match (key.as_str(), value) {
                (_, Value::Null) => {} // explicit null == absent
                ("id", Value::Str(s)) => rec.id = Some(s),
                ("tree", Value::Str(s)) => {
                    rec.tree = s;
                    saw_tree = true;
                }
                ("scheduler", Value::Str(s)) => rec.scheduler = Some(s),
                ("processors", Value::Num(raw)) => {
                    processors = Some(raw.parse().map_err(|_| {
                        format!("`processors` must be a non-negative integer, got `{raw}`")
                    })?);
                }
                ("cap", Value::Num(raw)) => {
                    let c: f64 = raw.parse().expect("validated by the parser");
                    if !c.is_finite() {
                        return Err(format!("`cap` must be finite, got `{raw}`"));
                    }
                    cap = Some(c);
                }
                ("platform", v @ Value::Obj(_)) => explicit = Some(platform_from_value(&v)?),
                ("seq", Value::Str(s)) => {
                    rec.seq = Some(
                        SeqAlgo::by_name(&s)
                            .ok_or_else(|| format!("unknown `seq` algorithm `{s}`"))?,
                    );
                }
                ("seed", Value::Num(raw)) => {
                    rec.seed = Some(raw.parse().map_err(|_| {
                        format!("`seed` must be a non-negative integer, got `{raw}`")
                    })?);
                }
                (k @ ("id" | "tree" | "scheduler" | "seq"), v) => {
                    return Err(format!("`{k}` must be a string, got {v:?}"))
                }
                (k @ ("processors" | "cap" | "seed"), v) => {
                    return Err(format!("`{k}` must be a number, got {v:?}"))
                }
                ("platform", v) => return Err(format!("`platform` must be an object, got {v:?}")),
                (k, _) => return Err(format!("unknown request key `{k}`")),
            }
        }
        if !saw_tree {
            return Err("request needs a `tree` path".into());
        }
        rec.platform = match (explicit, processors, cap) {
            (Some(_), Some(_), _) | (Some(_), _, Some(_)) => {
                return Err("`platform` cannot be combined with `processors`/`cap`".into())
            }
            (Some(platform), None, None) => Some(PlatformSpec::Explicit(platform)),
            (None, Some(processors), cap) => Some(PlatformSpec::Flat { processors, cap }),
            (None, None, Some(_)) => return Err("`cap` needs `processors`".into()),
            (None, None, None) => None,
        };
        Ok(rec)
    }

    /// Renders the record back to its canonical one-line JSON form
    /// (optional absent fields omitted). Flat platforms render as the
    /// legacy `processors`/`cap` fields, byte-compatible with pre-platform
    /// streams.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        if let Some(id) = &self.id {
            s.push_str(&format!("\"id\":\"{}\",", escape(id)));
        }
        s.push_str(&format!("\"tree\":\"{}\"", escape(&self.tree)));
        if let Some(name) = &self.scheduler {
            s.push_str(&format!(",\"scheduler\":\"{}\"", escape(name)));
        }
        match &self.platform {
            Some(PlatformSpec::Flat { processors, cap }) => {
                s.push_str(&format!(",\"processors\":{processors}"));
                if let Some(cap) = cap {
                    s.push_str(&format!(",\"cap\":{cap}"));
                }
            }
            Some(PlatformSpec::Explicit(platform)) => {
                s.push_str(&format!(",\"platform\":{}", platform_json(platform)));
            }
            None => {}
        }
        if let Some(seq) = self.seq {
            s.push_str(&format!(",\"seq\":\"{}\"", seq.name()));
        }
        if let Some(seed) = self.seed {
            s.push_str(&format!(",\"seed\":{seed}"));
        }
        s.push('}');
        s
    }
}

// ---------------------------------------------------------------------------
// Record builder
// ---------------------------------------------------------------------------

/// Builder for the machine-readable one-line JSON records every `--json`
/// surface shares: fixed key order (insertion order), numbers in Rust
/// `Display` form, absent values as explicit `null`. The schedule record,
/// the serving responses, and the bench summaries are all built through
/// this, so their field conventions cannot drift apart.
#[derive(Clone, Debug, Default)]
pub struct JsonRecord {
    buf: String,
}

impl JsonRecord {
    /// An empty record (`{}` if finished immediately).
    pub fn new() -> JsonRecord {
        JsonRecord::default()
    }

    fn push_key(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape(key));
        self.buf.push_str("\":");
    }

    /// Appends a string field (escaped).
    pub fn str(mut self, key: &str, value: &str) -> JsonRecord {
        self.push_key(key);
        self.buf.push('"');
        self.buf.push_str(&escape(value));
        self.buf.push('"');
        self
    }

    /// Appends a number field in Rust `Display` form.
    pub fn num(mut self, key: &str, value: f64) -> JsonRecord {
        self.push_key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Appends an integer field.
    pub fn int(mut self, key: &str, value: u64) -> JsonRecord {
        self.push_key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Appends an optional number: the value, or `null`.
    pub fn opt_num(self, key: &str, value: Option<f64>) -> JsonRecord {
        match value {
            Some(v) => self.num(key, v),
            None => self.null(key),
        }
    }

    /// Appends an optional integer: the value, or `null`.
    pub fn opt_int(self, key: &str, value: Option<u64>) -> JsonRecord {
        match value {
            Some(v) => self.int(key, v),
            None => self.null(key),
        }
    }

    /// Appends an explicit `null` field.
    pub fn null(mut self, key: &str) -> JsonRecord {
        self.push_key(key);
        self.buf.push_str("null");
        self
    }

    /// Appends a pre-rendered JSON value verbatim (nested objects/arrays).
    pub fn raw(mut self, key: &str, rendered: &str) -> JsonRecord {
        self.push_key(key);
        self.buf.push_str(rendered);
        self
    }

    /// Appends an array of numbers in `Display` form.
    pub fn num_array(self, key: &str, values: &[f64]) -> JsonRecord {
        let items: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        self.raw(key, &format!("[{}]", items.join(",")))
    }

    /// Closes the record: `{...}` with no trailing newline (embeddable as a
    /// nested value via [`JsonRecord::raw`]).
    pub fn render(self) -> String {
        format!("{{{}}}", self.buf)
    }

    /// Closes the record as one output line: `{...}\n`.
    pub fn line(self) -> String {
        format!("{{{}}}\n", self.buf)
    }
}

// ---------------------------------------------------------------------------
// Response records
// ---------------------------------------------------------------------------

/// The stable machine-readable record shared by `schedule --json` and the
/// serving protocol, rendered through [`JsonRecord`].
///
/// Flat platforms (the paper's `p`-identical-processors machine) render
/// byte-identically to the pre-platform protocol. Non-flat platforms add a
/// `platform` object right after `processors` and, when the platform
/// declares memory domains, a trailing `domain_peaks` array.
#[derive(Clone, Debug)]
pub struct ScheduleRecord<'a> {
    /// Canonical scheduler name.
    pub scheduler: &'a str,
    /// The platform the schedule was built for.
    pub platform: &'a Platform,
    /// Number of tasks of the tree.
    pub tasks: usize,
    /// Achieved makespan.
    pub makespan: f64,
    /// Makespan lower bound of the scenario.
    pub makespan_lower_bound: f64,
    /// Achieved platform-global peak memory.
    pub peak_memory: f64,
    /// Sequential memory reference of the tree.
    pub memory_reference: f64,
    /// Forced cap admissions (memory-capped schedulers only).
    pub cap_violations: Option<usize>,
    /// Peak memory per platform domain (empty for flat platforms).
    pub domain_peaks: &'a [f64],
}

impl ScheduleRecord<'_> {
    /// Appends the record's fields to a partially built [`JsonRecord`] —
    /// the hook campaign records use to prefix scenario coordinates
    /// (campaign name, tree, platform point) while keeping the schedule
    /// fields byte-identical to `schedule --json` and the serve responses.
    pub fn embed(&self, rec: JsonRecord) -> JsonRecord {
        self.fields(rec)
    }

    fn fields(&self, rec: JsonRecord) -> JsonRecord {
        let mut rec = rec
            .str("scheduler", self.scheduler)
            .int("processors", u64::from(self.platform.processors()));
        if !self.platform.is_flat() {
            rec = rec.raw("platform", &platform_json(self.platform));
        }
        rec = rec
            .int("tasks", self.tasks as u64)
            .num("makespan", self.makespan)
            .num("makespan_lower_bound", self.makespan_lower_bound)
            .num("peak_memory", self.peak_memory)
            .num("memory_reference", self.memory_reference)
            .opt_num("cap", self.platform.memory_cap())
            .opt_int("cap_violations", self.cap_violations.map(|v| v as u64));
        if !self.domain_peaks.is_empty() {
            rec = rec.num_array("domain_peaks", self.domain_peaks);
        }
        rec
    }

    /// The `schedule --json` output line.
    pub fn to_json(&self) -> String {
        self.fields(JsonRecord::new()).line()
    }

    /// The serving response line: the same record prefixed with the echoed
    /// request `id` (or `null`).
    pub fn response_json(&self, id: Option<&str>) -> String {
        let rec = match id {
            Some(id) => JsonRecord::new().str("id", id),
            None => JsonRecord::new().null("id"),
        };
        self.fields(rec).line()
    }
}

/// A serving failure response: the echoed `id` plus the typed error's
/// message.
pub fn error_json(id: Option<&str>, error: &str) -> String {
    let rec = match id {
        Some(id) => JsonRecord::new().str("id", id),
        None => JsonRecord::new().null("id"),
    };
    rec.str("error", error).line()
}

/// The failure response for a request line the JSONL parser rejected.
///
/// There is no `id` to echo (the line did not parse), so the record
/// carries the typed [`treesched_core::SchedError::MalformedRequest`]
/// message plus the 1-based input line number as a machine-readable
/// `line` field — a client can map the record back to the offending
/// line without counting responses.
pub fn malformed_json(line: usize, reason: &str) -> String {
    let err = treesched_core::SchedError::MalformedRequest {
        line,
        reason: reason.to_string(),
    };
    JsonRecord::new()
        .null("id")
        .str("error", &err.to_string())
        .int("line", line as u64)
        .line()
}

/// Renders one [`crate::ServeResult`] as its response line.
pub fn result_json(result: &crate::ServeResult) -> String {
    match &result.outcome {
        Ok(out) => ScheduleRecord {
            scheduler: &result.scheduler,
            platform: &result.platform,
            tasks: result.tasks,
            makespan: out.outcome.eval.makespan,
            makespan_lower_bound: out.ms_lb,
            peak_memory: out.outcome.eval.peak_memory,
            memory_reference: out.mem_ref,
            cap_violations: out.outcome.diagnostics.cap_violations,
            domain_peaks: &out.outcome.domain_peaks,
        }
        .response_json(result.id.as_deref()),
        Err(e) => error_json(result.id.as_deref(), &e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_objects() {
        let pairs = parse_object(
            r#" {"id":"a\"b", "processors": 4, "cap": 1.5e3, "ok": true, "none": null} "#,
        )
        .unwrap();
        assert_eq!(
            pairs,
            vec![
                ("id".into(), Value::Str("a\"b".into())),
                ("processors".into(), Value::Num("4".into())),
                ("cap".into(), Value::Num("1.5e3".into())),
                ("ok".into(), Value::Bool(true)),
                ("none".into(), Value::Null),
            ]
        );
        assert_eq!(parse_object("{}").unwrap(), vec![]);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "[1]",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\":1} trailing",
            "{\"a\":{\"nested\":}}",
            "{\"a\":[1,]}",
            "{\"a\":[1}",
            "{\"a\":{\"b\":1]}",
            "{\"a\":1e}",
            "{\"a\":\"unterminated}",
            "{'a':1}",
        ] {
            assert!(parse_object(bad).is_err(), "accepted {bad:?}");
        }
        // runaway nesting is bounded, not stack-overflowed
        let deep = format!("{{\"a\":{}1{}}}", "[".repeat(100), "]".repeat(100));
        let err = parse_object(&deep).unwrap_err();
        assert!(err.contains("nested too deeply"), "{err}");
    }

    #[test]
    fn parser_handles_nested_objects_and_arrays() {
        let pairs = parse_object(r#"{"a":{"b":[1,2,{"c":"x"}],"d":{}},"e":[]}"#).unwrap();
        assert_eq!(
            pairs,
            vec![
                (
                    "a".into(),
                    Value::Obj(vec![
                        (
                            "b".into(),
                            Value::Arr(vec![
                                Value::Num("1".into()),
                                Value::Num("2".into()),
                                Value::Obj(vec![("c".into(), Value::Str("x".into()))]),
                            ])
                        ),
                        ("d".into(), Value::Obj(vec![])),
                    ])
                ),
                ("e".into(), Value::Arr(vec![])),
            ]
        );
    }

    #[test]
    fn strings_round_trip_escapes_and_utf8() {
        let original = "tabs\t quotes\" backslash\\ newline\n héllo ∞";
        let line = format!("{{\"id\":\"{}\"}}", escape(original));
        let pairs = parse_object(&line).unwrap();
        assert_eq!(pairs[0].1, Value::Str(original.to_string()));
        // \u escapes decode too
        let pairs = parse_object(r#"{"id":"éA"}"#).unwrap();
        assert_eq!(pairs[0].1, Value::Str("éA".to_string()));
    }

    #[test]
    fn surrogate_pairs_decode_like_any_json_encoder_emits_them() {
        // Python's json.dumps (default ensure_ascii=True) writes astral
        // characters as surrogate pairs; the protocol must accept them
        let pairs = parse_object(r#"{"id":"\ud83d\ude00 ok"}"#).unwrap();
        assert_eq!(pairs[0].1, Value::Str("\u{1f600} ok".to_string()));
        for bad in [
            r#"{"id":"\ud83d"}"#,  // lone high surrogate
            r#"{"id":"\ud83dx"}"#, // high surrogate, no escape next
            r#"{"id":"\ud83dA"}"#, // high surrogate, non-low next
            r#"{"id":"\ude00"}"#,  // lone low surrogate
        ] {
            let err = parse_object(bad).unwrap_err();
            assert!(err.contains("surrogate"), "{bad}: {err}");
        }
    }

    #[test]
    fn request_records_parse_and_round_trip() {
        let rec = RequestRecord::parse(
            r#"{"id":"r1","tree":"x.tree","scheduler":"deepest","processors":4,"cap":100,"seq":"liu","seed":7}"#,
        )
        .unwrap();
        assert_eq!(rec.id.as_deref(), Some("r1"));
        assert_eq!(rec.tree, "x.tree");
        assert_eq!(rec.scheduler.as_deref(), Some("deepest"));
        assert_eq!(
            rec.platform,
            Some(PlatformSpec::Flat {
                processors: 4,
                cap: Some(100.0)
            })
        );
        assert_eq!(
            rec.platform.as_ref().unwrap().to_platform(),
            Platform::new(4).with_memory_cap(100.0)
        );
        assert_eq!(rec.seq, Some(SeqAlgo::LiuExact));
        assert_eq!(rec.seed, Some(7));
        assert_eq!(RequestRecord::parse(&rec.to_json()).unwrap(), rec);

        // minimal record: only tree + processors
        let rec = RequestRecord::parse(r#"{"tree":"x.tree","processors":2}"#).unwrap();
        assert_eq!(rec.scheduler, None);
        assert_eq!(RequestRecord::parse(&rec.to_json()).unwrap(), rec);

        // platform-less record: the front-end decides
        let rec = RequestRecord::parse(r#"{"tree":"x.tree"}"#).unwrap();
        assert_eq!(rec.platform, None);
        assert_eq!(RequestRecord::parse(&rec.to_json()).unwrap(), rec);
    }

    #[test]
    fn request_records_parse_platform_objects() {
        let line = r#"{"id":"h","tree":"x.tree","platform":{"classes":[{"count":2,"speed":2},{"count":2,"speed":1}],"domains":[{"capacity":64,"classes":[0]},{"capacity":32,"classes":[1]}]}}"#;
        let rec = RequestRecord::parse(line).unwrap();
        let expected =
            Platform::heterogeneous(vec![ProcClass::new(2, 2.0), ProcClass::new(2, 1.0)])
                .with_domain(64.0, &[0])
                .with_domain(32.0, &[1]);
        assert_eq!(rec.platform, Some(PlatformSpec::Explicit(expected.clone())));
        assert_eq!(rec.platform.as_ref().unwrap().to_platform(), expected);
        // canonical rendering round-trips through the parser
        assert_eq!(RequestRecord::parse(&rec.to_json()).unwrap(), rec);
        // speed defaults to 1.0; domains are optional
        let rec = RequestRecord::parse(r#"{"tree":"x.tree","platform":{"classes":[{"count":3}]}}"#)
            .unwrap();
        assert_eq!(
            rec.platform.as_ref().unwrap().to_platform(),
            Platform::heterogeneous(vec![ProcClass::new(3, 1.0)])
        );
    }

    #[test]
    fn platform_json_round_trips() {
        for platform in [
            Platform::new(4),
            Platform::new(2).with_memory_cap(12.5),
            Platform::heterogeneous(vec![ProcClass::new(2, 2.0), ProcClass::new(2, 1.0)]),
            Platform::heterogeneous(vec![ProcClass::new(1, 1.5), ProcClass::new(3, 0.5)])
                .with_domain(100.0, &[0, 1]),
            Platform::heterogeneous(vec![ProcClass::new(2, 2.0), ProcClass::new(2, 1.0)])
                .with_domain(64.0, &[0])
                .with_domain(32.0, &[1]),
            Platform::heterogeneous(vec![ProcClass::new(2, 2.0), ProcClass::new(2, 1.0)])
                .with_domain(64.0, &[0])
                .with_domain(32.0, &[1])
                .with_comm(vec![0.0, 2.0, 2.0, 0.0]),
        ] {
            let rendered = platform_json(&platform);
            let pairs = parse_object(&format!("{{\"platform\":{rendered}}}")).unwrap();
            let parsed = platform_from_value(&pairs[0].1).unwrap();
            assert_eq!(parsed, platform, "{rendered}");
        }
        // the comm matrix is echoed only when it carries a non-zero cost, so
        // comm-free platforms keep their historical byte rendering
        let bare = Platform::heterogeneous(vec![ProcClass::new(1, 1.0), ProcClass::new(1, 1.0)])
            .with_domain(8.0, &[0])
            .with_domain(8.0, &[1]);
        assert_eq!(
            platform_json(&bare.clone().with_comm(vec![0.0; 4])),
            platform_json(&bare)
        );
        assert!(
            platform_json(&bare.clone().with_comm(vec![0.0, 0.5, 0.5, 0.0]))
                .ends_with(",\"comm\":[0,0.5,0.5,0]}")
        );
    }

    #[test]
    fn request_records_reject_bad_fields() {
        for (line, needle) in [
            (r#"{"processors":2}"#, "tree"),
            (r#"{"tree":"x","cap":5}"#, "needs `processors`"),
            (r#"{"tree":"x","processors":2.5}"#, "integer"),
            (r#"{"tree":"x","processors":2,"seq":"fast"}"#, "seq"),
            (r#"{"tree":"x","processors":2,"seed":-1}"#, "seed"),
            (r#"{"tree":"x","processors":2,"bogus":1}"#, "bogus"),
            (r#"{"tree":1,"processors":2}"#, "string"),
            (r#"{"tree":"x","processors":"two"}"#, "number"),
            (r#"{"tree":"x","platform":3}"#, "object"),
            (r#"{"tree":"x","platform":{"domains":[]}}"#, "classes"),
            (
                r#"{"tree":"x","platform":{"classes":[{"speed":2}]}}"#,
                "count",
            ),
            (
                r#"{"tree":"x","platform":{"classes":[{"count":2,"warp":9}]}}"#,
                "warp",
            ),
            (
                r#"{"tree":"x","platform":{"classes":[{"count":2}],"domains":[{"classes":[0]}]}}"#,
                "capacity",
            ),
            (
                r#"{"tree":"x","platform":{"classes":[{"count":2}],"comm":5}}"#,
                "array",
            ),
            (
                r#"{"tree":"x","platform":{"classes":[{"count":2}],"comm":["a"]}}"#,
                "comm cost",
            ),
            (
                r#"{"tree":"x","processors":2,"platform":{"classes":[{"count":2}]}}"#,
                "cannot be combined",
            ),
        ] {
            let err = RequestRecord::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
        // explicit nulls are the same as absent fields
        let rec =
            RequestRecord::parse(r#"{"id":null,"tree":"x","processors":2,"cap":null}"#).unwrap();
        assert_eq!(rec.id, None);
        assert_eq!(
            rec.platform,
            Some(PlatformSpec::Flat {
                processors: 2,
                cap: None
            })
        );
    }

    fn sample_record<'a>(platform: &'a Platform, peaks: &'a [f64]) -> ScheduleRecord<'a> {
        ScheduleRecord {
            scheduler: "ParSubtrees",
            platform,
            tasks: 7,
            makespan: 8.0,
            makespan_lower_bound: 7.5,
            peak_memory: 12.0,
            memory_reference: 9.0,
            cap_violations: None,
            domain_peaks: peaks,
        }
    }

    #[test]
    fn response_records_share_the_schedule_json_shape() {
        let flat = Platform::new(2);
        let base = sample_record(&flat, &[]).to_json();
        assert_eq!(
            base,
            "{\"scheduler\":\"ParSubtrees\",\"processors\":2,\"tasks\":7,\
             \"makespan\":8,\"makespan_lower_bound\":7.5,\
             \"peak_memory\":12,\"memory_reference\":9,\
             \"cap\":null,\"cap_violations\":null}\n"
        );
        let capped = Platform::new(2).with_memory_cap(20.0);
        let mut rec = sample_record(&capped, &[]);
        rec.cap_violations = Some(0);
        let tagged = rec.response_json(Some("r1"));
        assert!(tagged.starts_with("{\"id\":\"r1\","));
        assert!(tagged.contains("\"cap\":20,\"cap_violations\":0"));
        // every response line is itself a valid JSON object
        assert!(parse_object(tagged.trim_end()).is_ok());
        assert_eq!(
            error_json(None, "unknown scheduler `x`"),
            "{\"id\":null,\"error\":\"unknown scheduler `x`\"}\n"
        );
    }

    #[test]
    fn heterogeneous_records_add_platform_and_domain_peaks() {
        let het = Platform::heterogeneous(vec![ProcClass::new(2, 2.0), ProcClass::new(2, 1.0)])
            .with_domain(64.0, &[0])
            .with_domain(32.0, &[1]);
        let peaks = [10.0, 6.5];
        let line = sample_record(&het, &peaks).to_json();
        assert!(
            line.contains("\"processors\":4,\"platform\":{\"classes\":[{\"count\":2,\"speed\":2},{\"count\":2,\"speed\":1}],\"domains\":[{\"capacity\":64,\"classes\":[0]},{\"capacity\":32,\"classes\":[1]}]},\"tasks\":7"),
            "{line}"
        );
        // two domains that do not jointly act as one shared cap: cap null
        assert!(line.contains("\"cap\":null"), "{line}");
        assert!(
            line.trim_end().ends_with("\"domain_peaks\":[10,6.5]}"),
            "{line}"
        );
        // the heterogeneous response still parses as one JSON object
        assert!(parse_object(line.trim_end()).is_ok());
    }

    #[test]
    fn json_record_builder_escapes_and_nests() {
        let line = JsonRecord::new()
            .str("name", "a\"b")
            .int("n", 3)
            .num("x", 1.5)
            .opt_num("missing", None)
            .num_array("xs", &[1.0, 2.5])
            .raw("nested", "{\"k\":1}")
            .line();
        assert_eq!(
            line,
            "{\"name\":\"a\\\"b\",\"n\":3,\"x\":1.5,\"missing\":null,\
             \"xs\":[1,2.5],\"nested\":{\"k\":1}}\n"
        );
        assert!(parse_object(line.trim_end()).is_ok());
        assert_eq!(JsonRecord::new().render(), "{}");
    }
}
