//! The serving wire protocol: one flat JSON object per line.
//!
//! **Requests** (in): `tree` (path to a `treesched tree v1` file) and
//! `processors` are required; `id`, `scheduler`, `cap`, `seq`
//! (`best|naive|liu`) and `seed` are optional:
//!
//! ```json
//! {"id":"r1","tree":"fork.tree","scheduler":"deepest","processors":4}
//! ```
//!
//! **Responses** (out) reuse the field conventions of the CLI's
//! `schedule --json` record — same keys, same order, numbers in Rust
//! `Display` form, absent values as `null` — prefixed with the echoed
//! `id`:
//!
//! ```json
//! {"id":"r1","scheduler":"ParDeepestFirst","processors":4,"tasks":7,...}
//! ```
//!
//! Failed requests produce `{"id":...,"error":"..."}` instead, so a
//! response line is a success record exactly when it has no `error` key.
//!
//! The parser accepts flat objects only (strings, numbers, booleans,
//! `null`); nested containers are a protocol error. This keeps the crate
//! dependency-free while staying a strict subset of JSON — any JSON
//! tooling can produce and consume the stream.

use treesched_core::SeqAlgo;

/// One parsed scalar value of a flat JSON object.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A JSON string, unescaped.
    Str(String),
    /// A JSON number, kept as its raw token so integers survive exactly.
    Num(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

/// Parses one line as a flat JSON object, preserving key order.
pub fn parse_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut pairs = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            pairs.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err(p.err("expected `,` or `}`")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the object"));
    }
    Ok(pairs)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        if self.next() == Some(want) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected `{}`", want as char)))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = self.hex4()?;
                        let code = match hex {
                            // high surrogate: JSON encodes astral-plane
                            // characters as a \uXXXX\uXXXX pair
                            0xd800..=0xdbff => {
                                if self.next() != Some(b'\\') || self.next() != Some(b'u') {
                                    return Err(self.err("unpaired \\u surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xdc00..=0xdfff).contains(&low) {
                                    return Err(self.err("unpaired \\u surrogate"));
                                }
                                0x10000 + ((hex - 0xd800) << 10) + (low - 0xdc00)
                            }
                            0xdc00..=0xdfff => return Err(self.err("unpaired \\u surrogate")),
                            c => c,
                        };
                        out.push(char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?);
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // multi-byte UTF-8: copy the full sequence verbatim
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    /// Reads the 4 hex digits of a `\u` escape.
    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(hex)
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'{') | Some(b'[') => Err(self.err("nested values are not supported")),
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
                ) {
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
                raw.parse::<f64>()
                    .map_err(|_| self.err(&format!("bad number `{raw}`")))?;
                Ok(Value::Num(raw.to_string()))
            }
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }
}

/// Escapes `s` as the contents of a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Request records
// ---------------------------------------------------------------------------

/// One parsed request line of the serving protocol.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestRecord {
    /// Client tag echoed into the response (`id`, optional).
    pub id: Option<String>,
    /// Path to the tree file (`tree`, required).
    pub tree: String,
    /// Scheduler registry name or alias (`scheduler`, optional — the
    /// engine front-end supplies its default).
    pub scheduler: Option<String>,
    /// Processor count (`processors`, required, ≥ 0 checked downstream).
    pub processors: u32,
    /// Platform memory cap (`cap`, optional).
    pub cap: Option<f64>,
    /// Sequential sub-algorithm (`seq`: `best|naive|liu`, optional).
    pub seq: Option<SeqAlgo>,
    /// Seed for randomized schedulers (`seed`, optional).
    pub seed: Option<u64>,
}

impl RequestRecord {
    /// Parses one request line. Unknown keys are rejected — silently
    /// ignoring a typo like `"processor"` would serve the wrong request.
    pub fn parse(line: &str) -> Result<RequestRecord, String> {
        let pairs = parse_object(line)?;
        let mut rec = RequestRecord {
            id: None,
            tree: String::new(),
            scheduler: None,
            processors: 0,
            cap: None,
            seq: None,
            seed: None,
        };
        let mut saw_tree = false;
        let mut saw_procs = false;
        for (key, value) in pairs {
            match (key.as_str(), value) {
                (_, Value::Null) => {} // explicit null == absent
                ("id", Value::Str(s)) => rec.id = Some(s),
                ("tree", Value::Str(s)) => {
                    rec.tree = s;
                    saw_tree = true;
                }
                ("scheduler", Value::Str(s)) => rec.scheduler = Some(s),
                ("processors", Value::Num(raw)) => {
                    rec.processors = raw.parse().map_err(|_| {
                        format!("`processors` must be a non-negative integer, got `{raw}`")
                    })?;
                    saw_procs = true;
                }
                ("cap", Value::Num(raw)) => {
                    let cap: f64 = raw.parse().expect("validated by the parser");
                    if !cap.is_finite() {
                        return Err(format!("`cap` must be finite, got `{raw}`"));
                    }
                    rec.cap = Some(cap);
                }
                ("seq", Value::Str(s)) => {
                    rec.seq = Some(
                        SeqAlgo::by_name(&s)
                            .ok_or_else(|| format!("unknown `seq` algorithm `{s}`"))?,
                    );
                }
                ("seed", Value::Num(raw)) => {
                    rec.seed = Some(raw.parse().map_err(|_| {
                        format!("`seed` must be a non-negative integer, got `{raw}`")
                    })?);
                }
                (k @ ("id" | "tree" | "scheduler" | "seq"), v) => {
                    return Err(format!("`{k}` must be a string, got {v:?}"))
                }
                (k @ ("processors" | "cap" | "seed"), v) => {
                    return Err(format!("`{k}` must be a number, got {v:?}"))
                }
                (k, _) => return Err(format!("unknown request key `{k}`")),
            }
        }
        if !saw_tree {
            return Err("request needs a `tree` path".into());
        }
        if !saw_procs {
            return Err("request needs `processors`".into());
        }
        Ok(rec)
    }

    /// Renders the record back to its canonical one-line JSON form
    /// (optional absent fields omitted).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        if let Some(id) = &self.id {
            s.push_str(&format!("\"id\":\"{}\",", escape(id)));
        }
        s.push_str(&format!("\"tree\":\"{}\"", escape(&self.tree)));
        if let Some(name) = &self.scheduler {
            s.push_str(&format!(",\"scheduler\":\"{}\"", escape(name)));
        }
        s.push_str(&format!(",\"processors\":{}", self.processors));
        if let Some(cap) = self.cap {
            s.push_str(&format!(",\"cap\":{cap}"));
        }
        if let Some(seq) = self.seq {
            s.push_str(&format!(",\"seq\":\"{}\"", seq.name()));
        }
        if let Some(seed) = self.seed {
            s.push_str(&format!(",\"seed\":{seed}"));
        }
        s.push('}');
        s
    }
}

// ---------------------------------------------------------------------------
// Response records
// ---------------------------------------------------------------------------

/// The stable machine-readable record shared by `schedule --json` and the
/// serving protocol: one flat JSON object, keys fixed, numbers in Rust
/// `Display` form (finite by construction), absent values as `null`.
#[allow(clippy::too_many_arguments)]
pub fn schedule_json(
    scheduler: &str,
    processors: u32,
    tasks: usize,
    makespan: f64,
    ms_lb: f64,
    peak_memory: f64,
    mem_ref: f64,
    cap: Option<f64>,
    cap_violations: Option<usize>,
) -> String {
    format!(
        "{{{}}}\n",
        schedule_fields(
            scheduler,
            processors,
            tasks,
            makespan,
            ms_lb,
            peak_memory,
            mem_ref,
            cap,
            cap_violations
        )
    )
}

/// A serving response: the `schedule --json` record prefixed with the
/// echoed request `id` (or `null`).
#[allow(clippy::too_many_arguments)]
pub fn response_json(
    id: Option<&str>,
    scheduler: &str,
    processors: u32,
    tasks: usize,
    makespan: f64,
    ms_lb: f64,
    peak_memory: f64,
    mem_ref: f64,
    cap: Option<f64>,
    cap_violations: Option<usize>,
) -> String {
    format!(
        "{{{},{}}}\n",
        id_field(id),
        schedule_fields(
            scheduler,
            processors,
            tasks,
            makespan,
            ms_lb,
            peak_memory,
            mem_ref,
            cap,
            cap_violations
        )
    )
}

/// A serving failure response: the echoed `id` plus the typed error's
/// message.
pub fn error_json(id: Option<&str>, error: &str) -> String {
    format!("{{{},\"error\":\"{}\"}}\n", id_field(id), escape(error))
}

fn id_field(id: Option<&str>) -> String {
    match id {
        Some(id) => format!("\"id\":\"{}\"", escape(id)),
        None => "\"id\":null".to_string(),
    }
}

#[allow(clippy::too_many_arguments)]
fn schedule_fields(
    scheduler: &str,
    processors: u32,
    tasks: usize,
    makespan: f64,
    ms_lb: f64,
    peak_memory: f64,
    mem_ref: f64,
    cap: Option<f64>,
    cap_violations: Option<usize>,
) -> String {
    let opt = |v: Option<String>| v.unwrap_or_else(|| "null".into());
    format!(
        concat!(
            "\"scheduler\":\"{}\",\"processors\":{},\"tasks\":{},",
            "\"makespan\":{},\"makespan_lower_bound\":{},",
            "\"peak_memory\":{},\"memory_reference\":{},",
            "\"cap\":{},\"cap_violations\":{}"
        ),
        escape(scheduler),
        processors,
        tasks,
        makespan,
        ms_lb,
        peak_memory,
        mem_ref,
        opt(cap.map(|c| c.to_string())),
        opt(cap_violations.map(|v| v.to_string())),
    )
}

/// Renders one [`crate::ServeResult`] as its response line.
pub fn result_json(result: &crate::ServeResult) -> String {
    match &result.outcome {
        Ok(out) => response_json(
            result.id.as_deref(),
            &result.scheduler,
            result.processors,
            result.tasks,
            out.outcome.eval.makespan,
            out.ms_lb,
            out.outcome.eval.peak_memory,
            out.mem_ref,
            result.cap,
            out.outcome.diagnostics.cap_violations,
        ),
        Err(e) => error_json(result.id.as_deref(), &e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_objects() {
        let pairs = parse_object(
            r#" {"id":"a\"b", "processors": 4, "cap": 1.5e3, "ok": true, "none": null} "#,
        )
        .unwrap();
        assert_eq!(
            pairs,
            vec![
                ("id".into(), Value::Str("a\"b".into())),
                ("processors".into(), Value::Num("4".into())),
                ("cap".into(), Value::Num("1.5e3".into())),
                ("ok".into(), Value::Bool(true)),
                ("none".into(), Value::Null),
            ]
        );
        assert_eq!(parse_object("{}").unwrap(), vec![]);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "[1]",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\":1} trailing",
            "{\"a\":{\"nested\":1}}",
            "{\"a\":[1]}",
            "{\"a\":1e}",
            "{\"a\":\"unterminated}",
            "{'a':1}",
        ] {
            assert!(parse_object(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn strings_round_trip_escapes_and_utf8() {
        let original = "tabs\t quotes\" backslash\\ newline\n héllo ∞";
        let line = format!("{{\"id\":\"{}\"}}", escape(original));
        let pairs = parse_object(&line).unwrap();
        assert_eq!(pairs[0].1, Value::Str(original.to_string()));
        // \u escapes decode too
        let pairs = parse_object(r#"{"id":"éA"}"#).unwrap();
        assert_eq!(pairs[0].1, Value::Str("éA".to_string()));
    }

    #[test]
    fn surrogate_pairs_decode_like_any_json_encoder_emits_them() {
        // Python's json.dumps (default ensure_ascii=True) writes astral
        // characters as surrogate pairs; the protocol must accept them
        let pairs = parse_object(r#"{"id":"\ud83d\ude00 ok"}"#).unwrap();
        assert_eq!(pairs[0].1, Value::Str("\u{1f600} ok".to_string()));
        for bad in [
            r#"{"id":"\ud83d"}"#,  // lone high surrogate
            r#"{"id":"\ud83dx"}"#, // high surrogate, no escape next
            r#"{"id":"\ud83dA"}"#, // high surrogate, non-low next
            r#"{"id":"\ude00"}"#,  // lone low surrogate
        ] {
            let err = parse_object(bad).unwrap_err();
            assert!(err.contains("surrogate"), "{bad}: {err}");
        }
    }

    #[test]
    fn request_records_parse_and_round_trip() {
        let rec = RequestRecord::parse(
            r#"{"id":"r1","tree":"x.tree","scheduler":"deepest","processors":4,"cap":100,"seq":"liu","seed":7}"#,
        )
        .unwrap();
        assert_eq!(rec.id.as_deref(), Some("r1"));
        assert_eq!(rec.tree, "x.tree");
        assert_eq!(rec.scheduler.as_deref(), Some("deepest"));
        assert_eq!(rec.processors, 4);
        assert_eq!(rec.cap, Some(100.0));
        assert_eq!(rec.seq, Some(SeqAlgo::LiuExact));
        assert_eq!(rec.seed, Some(7));
        assert_eq!(RequestRecord::parse(&rec.to_json()).unwrap(), rec);

        // minimal record: only tree + processors
        let rec = RequestRecord::parse(r#"{"tree":"x.tree","processors":2}"#).unwrap();
        assert_eq!(rec.scheduler, None);
        assert_eq!(RequestRecord::parse(&rec.to_json()).unwrap(), rec);
    }

    #[test]
    fn request_records_reject_bad_fields() {
        for (line, needle) in [
            (r#"{"processors":2}"#, "tree"),
            (r#"{"tree":"x"}"#, "processors"),
            (r#"{"tree":"x","processors":2.5}"#, "integer"),
            (r#"{"tree":"x","processors":2,"seq":"fast"}"#, "seq"),
            (r#"{"tree":"x","processors":2,"seed":-1}"#, "seed"),
            (r#"{"tree":"x","processors":2,"bogus":1}"#, "bogus"),
            (r#"{"tree":1,"processors":2}"#, "string"),
            (r#"{"tree":"x","processors":"two"}"#, "number"),
        ] {
            let err = RequestRecord::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
        // explicit nulls are the same as absent fields
        let rec =
            RequestRecord::parse(r#"{"id":null,"tree":"x","processors":2,"cap":null}"#).unwrap();
        assert_eq!(rec.id, None);
        assert_eq!(rec.cap, None);
    }

    #[test]
    fn response_records_share_the_schedule_json_shape() {
        let base = schedule_json("ParSubtrees", 2, 7, 8.0, 7.5, 12.0, 9.0, None, None);
        assert_eq!(
            base,
            "{\"scheduler\":\"ParSubtrees\",\"processors\":2,\"tasks\":7,\
             \"makespan\":8,\"makespan_lower_bound\":7.5,\
             \"peak_memory\":12,\"memory_reference\":9,\
             \"cap\":null,\"cap_violations\":null}\n"
        );
        let tagged = response_json(
            Some("r1"),
            "ParSubtrees",
            2,
            7,
            8.0,
            7.5,
            12.0,
            9.0,
            Some(20.0),
            Some(0),
        );
        assert!(tagged.starts_with("{\"id\":\"r1\","));
        assert!(tagged.contains("\"cap\":20,\"cap_violations\":0"));
        // every response line is itself a valid flat JSON object
        assert!(parse_object(tagged.trim_end()).is_ok());
        assert_eq!(
            error_json(None, "unknown scheduler `x`"),
            "{\"id\":null,\"error\":\"unknown scheduler `x`\"}\n"
        );
    }
}
