//! Batched serving of scheduling requests — the long-lived counterpart of
//! the one-shot CLI/harness front-ends.
//!
//! Every consumer of the scheduler registry so far runs one-shot: build a
//! tree, schedule it, exit. This crate turns the same registry into a
//! service for request *streams*:
//!
//! * [`ServeEngine`] — N long-lived worker threads, each owning its own
//!   [`treesched_core::Scratch`], so the per-tree traversal/depth caches
//!   and list-scheduling buffers are reused across requests instead of
//!   re-allocated per call;
//! * **sharding** — requests are routed to workers by the structural
//!   [`treesched_core::tree_fingerprint`] of their tree, so repeat traffic
//!   for one tree always lands on the worker whose caches are already
//!   warm;
//! * **batching** — within one [`ServeEngine::drain`] window, requests for
//!   the same tree are grouped into a single batch, so the cached
//!   reference traversal is computed once per batch instead of once per
//!   request;
//! * **determinism** — results come back ordered by submission index, and
//!   every scheduler in the registry is deterministic per request, so the
//!   output stream is byte-identical no matter how many workers serve it.
//!
//! The wire protocol lives in [`jsonl`]: one JSON object per line,
//! requests in, responses out, with the response records sharing the field
//! conventions of the CLI's `schedule --json`. Platforms travel either as
//! the flat legacy `processors`/`cap` fields or as a nested `platform`
//! object (processor classes + memory domains); heterogeneous requests
//! stream through the engine exactly like uniform ones — `OwnedRequest`
//! moves the platform whole, so output stays worker-count independent.
//!
//! ```
//! use std::sync::Arc;
//! use treesched_core::{Platform, SchedulerRegistry};
//! use treesched_model::TaskTree;
//! use treesched_serve::{ServeEngine, ServeRequest};
//!
//! let mut engine = ServeEngine::new(SchedulerRegistry::standard(), 2);
//! let tree = Arc::new(TaskTree::fork(8, 1.0, 1.0, 0.0));
//! for p in [2, 4] {
//!     engine.submit(ServeRequest::new(Arc::clone(&tree), "deepest", Platform::new(p)));
//! }
//! let results = engine.drain();
//! assert_eq!(results.len(), 2);
//! assert!(results[0].outcome.is_ok());
//! assert_eq!(engine.stats().batches, 1); // same tree: one batch
//! ```

pub mod engine;
pub mod jsonl;

pub use engine::{ServeEngine, ServeOutcome, ServeRequest, ServeResult, ServeStats};
pub use jsonl::{
    error_json, malformed_json, platform_from_value, platform_json, result_json, JsonRecord,
    PlatformSpec, RequestRecord, ScheduleRecord,
};
