//! Assembly trees: relaxed node amalgamation over the elimination tree plus
//! the paper's multifrontal weight formulas (§6.2).
//!
//! Each assembly-tree node amalgamates `η ≥ 1` consecutive elimination-tree
//! columns; with `µ` the factor column count of the *highest* (closest to
//! the root) amalgamated column, the paper models the frontal-matrix costs
//! of the multifrontal factorization as
//!
//! ```text
//! n_i = η² + 2η(µ−1)                      (frontal matrix memory)
//! w_i = 2/3·η³ + η²(µ−1) + η(µ−1)²        (factor + update flops)
//! f_i = (µ−1)²                            (contribution block passed up)
//! ```

use crate::etree::{column_counts, elimination_tree, EliminationTree};
use crate::ordering::Ordering;
use crate::pattern::SparsePattern;
use treesched_model::{TaskTree, TreeError};

/// Per-node weights from the paper's formulas, exposed for tests and
/// detailed inspection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrontalWeights {
    /// Execution-file (frontal matrix) size `n_i`.
    pub exec: f64,
    /// Processing cost `w_i`.
    pub work: f64,
    /// Output-file (contribution block) size `f_i`.
    pub output: f64,
}

/// The paper's weight formulas for an amalgamated node with `eta` columns
/// whose highest column has factor count `mu`.
pub fn frontal_weights(eta: u32, mu: u32) -> FrontalWeights {
    let eta = eta as f64;
    let m = (mu.max(1) - 1) as f64;
    FrontalWeights {
        exec: eta * eta + 2.0 * eta * m,
        work: 2.0 / 3.0 * eta * eta * eta + eta * eta * m + eta * m * m,
        output: m * m,
    }
}

/// Amalgamation rule: which columns may be merged into their parent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AmalgRule {
    /// Relaxed (the paper's corpus rule): merge along only-child chains
    /// while the group holds at most `limit` original columns. Introduces
    /// logical zeros in the merged front but shrinks the tree aggressively.
    Relaxed {
        /// Maximum original columns per assembly node (`η ≤ limit`).
        limit: u32,
    },
    /// Fundamental supernodes: merge an only child `j` into its parent `p`
    /// only when `cc[j] == cc[p] + 1` — i.e. the two columns have identical
    /// structure below the diagonal block, so the merge adds **no** fill.
    Supernode {
        /// Maximum original columns per assembly node.
        limit: u32,
    },
}

impl AmalgRule {
    fn limit(self) -> u32 {
        match self {
            AmalgRule::Relaxed { limit } | AmalgRule::Supernode { limit } => limit,
        }
    }
}

/// Relaxed amalgamation of an elimination tree: bottom-up, an only child is
/// merged into its parent while the merged group stays within `limit`
/// original columns. `limit = 1` keeps the elimination tree as-is (`η = 1`
/// everywhere); the paper uses limits 1, 2, 4 and 16.
///
/// Returns `group[j]` = assembly-node id of column `j` (ids are dense,
/// `0..#groups`, numbered by the highest column of each group in
/// elimination order).
pub fn amalgamate(etree: &EliminationTree, limit: u32) -> Vec<u32> {
    amalgamate_with(etree, &[], AmalgRule::Relaxed { limit })
}

/// Amalgamation under an explicit [`AmalgRule`]. `cc` (factor column
/// counts) is required for [`AmalgRule::Supernode`] and ignored for
/// [`AmalgRule::Relaxed`] (pass `&[]`).
pub fn amalgamate_with(etree: &EliminationTree, cc: &[u32], rule: AmalgRule) -> Vec<u32> {
    let limit = rule.limit();
    assert!(limit >= 1, "amalgamation limit must be at least 1");
    if let AmalgRule::Supernode { .. } = rule {
        assert_eq!(cc.len(), etree.n(), "supernode rule needs column counts");
    }
    let n = etree.n();
    let mut child_count = vec![0u32; n];
    for j in 0..n {
        if let Some(p) = etree.parent[j] {
            child_count[p as usize] += 1;
        }
    }
    // union-find over columns; group representative = highest column
    let mut rep: Vec<u32> = (0..n as u32).collect();
    let mut size: Vec<u32> = vec![1; n];
    fn find(rep: &mut [u32], mut x: u32) -> u32 {
        while rep[x as usize] != x {
            let up = rep[rep[x as usize] as usize];
            rep[x as usize] = up;
            x = up;
        }
        x
    }
    // columns in increasing order = bottom-up in the etree
    for j in 0..n as u32 {
        let Some(p) = etree.parent[j as usize] else {
            continue;
        };
        if child_count[p as usize] != 1 {
            continue; // both rules merge along only-child chains
        }
        if let AmalgRule::Supernode { .. } = rule {
            // zero-fill condition: column j's structure is the parent's
            // plus the parent index itself
            if cc[j as usize] != cc[p as usize] + 1 {
                continue;
            }
        }
        let gj = find(&mut rep, j);
        let gp = find(&mut rep, p);
        if gj != gp && size[gj as usize] + size[gp as usize] <= limit {
            // attach child group under the parent group; parent rep (higher
            // column) stays the representative
            size[gp as usize] += size[gj as usize];
            rep[gj as usize] = gp;
        }
    }
    // dense group ids ordered by representative column
    let mut group = vec![u32::MAX; n];
    let mut reps: Vec<u32> = (0..n as u32).filter(|&j| find(&mut rep, j) == j).collect();
    reps.sort_unstable();
    let mut id_of_rep = std::collections::HashMap::with_capacity(reps.len());
    for (id, &r) in reps.iter().enumerate() {
        id_of_rep.insert(r, id as u32);
    }
    for j in 0..n as u32 {
        group[j as usize] = id_of_rep[&find(&mut rep, j)];
    }
    group
}

/// Builds the assembly [`TaskTree`] for an already-permuted pattern:
/// elimination tree → relaxed amalgamation (`limit`) → paper weights.
///
/// The pattern must be connected (single elimination-tree root); otherwise a
/// [`TreeError`] is returned.
pub fn assembly_tree(p: &SparsePattern, limit: u32) -> Result<TaskTree, TreeError> {
    let etree = elimination_tree(p);
    let cc = column_counts(p, &etree);
    assembly_tree_from_etree(&etree, &cc, limit)
}

/// As [`assembly_tree`], from a precomputed elimination tree and column
/// counts.
pub fn assembly_tree_from_etree(
    etree: &EliminationTree,
    cc: &[u32],
    limit: u32,
) -> Result<TaskTree, TreeError> {
    assembly_tree_with_rule(etree, cc, AmalgRule::Relaxed { limit })
}

/// As [`assembly_tree_from_etree`], under an explicit [`AmalgRule`].
pub fn assembly_tree_with_rule(
    etree: &EliminationTree,
    cc: &[u32],
    rule: AmalgRule,
) -> Result<TaskTree, TreeError> {
    let n = etree.n();
    assert_eq!(cc.len(), n);
    let group = amalgamate_with(etree, cc, rule);
    let n_groups = group.iter().copied().max().map_or(0, |m| m as usize + 1);

    // per group: η (size), highest column, parent group
    let mut eta = vec![0u32; n_groups];
    let mut highest = vec![0u32; n_groups];
    for (j, &g) in group.iter().enumerate() {
        let g = g as usize;
        eta[g] += 1;
        highest[g] = highest[g].max(j as u32);
    }
    let mut parents: Vec<Option<usize>> = vec![None; n_groups];
    for g in 0..n_groups {
        let h = highest[g] as usize;
        if let Some(p) = etree.parent[h] {
            let pg = group[p as usize] as usize;
            debug_assert_ne!(pg, g, "parent of a group's highest column is outside it");
            parents[g] = Some(pg);
        }
    }
    let mut work = vec![0.0; n_groups];
    let mut output = vec![0.0; n_groups];
    let mut exec = vec![0.0; n_groups];
    for g in 0..n_groups {
        let wts = frontal_weights(eta[g], cc[highest[g] as usize]);
        work[g] = wts.work;
        output[g] = wts.output;
        exec[g] = wts.exec;
    }
    TaskTree::from_parents(&parents, &work, &output, &exec)
}

/// Convenience pipeline: order a pattern, permute, and build the assembly
/// tree.
pub fn assembly_tree_ordered(
    base: &SparsePattern,
    ordering: &Ordering,
    limit: u32,
) -> Result<TaskTree, TreeError> {
    assembly_tree(&base.permute(&ordering.order), limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{grid2d, random_symmetric, Stencil};
    use crate::ordering::{min_degree, nested_dissection_2d};
    use treesched_model::ValidateExt;

    #[test]
    fn weight_formulas_match_paper() {
        // η = 1, µ = 1: leaf column with no off-diagonals
        let w = frontal_weights(1, 1);
        assert_eq!(w.exec, 1.0);
        assert_eq!(w.work, 2.0 / 3.0);
        assert_eq!(w.output, 0.0);
        // η = 2, µ = 4
        let w = frontal_weights(2, 4);
        assert_eq!(w.exec, 4.0 + 2.0 * 2.0 * 3.0); // 16
        assert_eq!(w.work, 2.0 / 3.0 * 8.0 + 4.0 * 3.0 + 2.0 * 9.0); // 35.333…
        assert_eq!(w.output, 9.0);
    }

    #[test]
    fn limit_one_keeps_elimination_tree() {
        let p =
            grid2d(4, 4, Stencil::Star).permute(&min_degree(&grid2d(4, 4, Stencil::Star)).order);
        let et = elimination_tree(&p);
        let group = amalgamate(&et, 1);
        // every column its own group
        let mut sorted = group.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), p.n());
    }

    #[test]
    fn amalgamation_respects_limit() {
        let base = grid2d(8, 8, Stencil::Star);
        let p = base.permute(&min_degree(&base).order);
        let et = elimination_tree(&p);
        for limit in [2u32, 4, 16] {
            let group = amalgamate(&et, limit);
            let n_groups = *group.iter().max().unwrap() as usize + 1;
            let mut eta = vec![0u32; n_groups];
            for &g in &group {
                eta[g as usize] += 1;
            }
            assert!(eta.iter().all(|&e| e >= 1 && e <= limit));
        }
    }

    #[test]
    fn larger_limits_give_fewer_nodes() {
        let base = random_symmetric(300, 3.0, 9);
        let p = base.permute(&min_degree(&base).order);
        let et = elimination_tree(&p);
        let sizes: Vec<usize> = [1u32, 2, 4, 16]
            .iter()
            .map(|&l| *amalgamate(&et, l).iter().max().unwrap() as usize + 1)
            .collect();
        assert!(sizes[0] >= sizes[1] && sizes[1] >= sizes[2] && sizes[2] >= sizes[3]);
        assert!(sizes[3] < sizes[0], "limit 16 should merge something");
    }

    #[test]
    fn chain_amalgamates_to_blocks() {
        // tridiagonal: pure chain etree; limit 4 → ceil(n/4) groups
        let p = crate::generate::band(12, 1);
        let et = elimination_tree(&p);
        let group = amalgamate(&et, 4);
        let n_groups = *group.iter().max().unwrap() + 1;
        assert_eq!(n_groups, 3);
    }

    #[test]
    fn assembly_tree_valid_for_all_pipelines() {
        let grids = grid2d(7, 6, Stencil::Star);
        let rand = random_symmetric(150, 4.0, 21);
        let cases: Vec<(crate::pattern::SparsePattern, Ordering)> = vec![
            (grids.clone(), min_degree(&grids)),
            (grids.clone(), nested_dissection_2d(7, 6)),
            (rand.clone(), min_degree(&rand)),
        ];
        for (base, ord) in cases {
            for limit in [1u32, 2, 4, 16] {
                let t = assembly_tree_ordered(&base, &ord, limit).expect("valid tree");
                assert!(t.validate().is_ok());
                assert!(t.len() <= base.n());
                // weights positive/meaningful
                for i in t.ids() {
                    assert!(t.work(i) > 0.0);
                    assert!(t.exec(i) >= 1.0);
                    assert!(t.output(i) >= 0.0);
                }
                // root has the final (often zero-ish) contribution block
                let _ = t.root();
            }
        }
    }

    #[test]
    fn assembly_weights_use_highest_column_mu() {
        // tridiagonal 4×4 with limit 2: groups {0,1} and {2,3};
        // cc = [2,2,2,1]; group 0 highest column 1 (µ=2), group 1 highest
        // column 3 (µ=1)
        let p = crate::generate::band(4, 1);
        let t = assembly_tree(&p, 2).unwrap();
        assert_eq!(t.len(), 2);
        let leaf = t.leaves()[0];
        let root = t.root();
        // leaf: η=2, µ=2 -> n = 4 + 2·2·1 = 8, f = 1, w = 16/3 + 4 + 2
        assert_eq!(t.exec(leaf), 8.0);
        assert_eq!(t.output(leaf), 1.0);
        assert!((t.work(leaf) - (16.0 / 3.0 + 4.0 + 2.0)).abs() < 1e-12);
        // root: η=2, µ=1 -> n = 4, f = 0, w = 16/3
        assert_eq!(t.exec(root), 4.0);
        assert_eq!(t.output(root), 0.0);
        assert!((t.work(root) - 16.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_pattern_fails_cleanly() {
        let p = SparsePattern::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(assembly_tree(&p, 1).is_err());
    }

    #[test]
    fn supernode_rule_rejects_fill_creating_merges() {
        // tridiagonal: struct(j) = {j+1} differs from struct(j+1) = {j+2},
        // so cc[j] == cc[p] (= 2), not cc[p] + 1 — no supernode merges,
        // except the final pair (cc 2 and 1) which is a genuine supernode
        let p = crate::generate::band(8, 1);
        let et = elimination_tree(&p);
        let cc = crate::etree::column_counts(&p, &et);
        let group = amalgamate_with(&et, &cc, AmalgRule::Supernode { limit: 16 });
        let n_groups = *group.iter().max().unwrap() as usize + 1;
        assert_eq!(n_groups, 7, "only the trailing pair is a supernode");
        // ... while the relaxed rule merges freely
        let relaxed = amalgamate_with(&et, &cc, AmalgRule::Relaxed { limit: 16 });
        assert_eq!(*relaxed.iter().max().unwrap(), 0);
    }

    #[test]
    fn supernode_rule_merges_dense_trailing_block() {
        // a fully dense pattern: every column's structure is the trailing
        // block, cc[j] = n - j, so cc[j] == cc[j+1] + 1 everywhere — one
        // giant supernode up to the cap
        let n = 6;
        let p = crate::generate::band(n, n - 1);
        let et = elimination_tree(&p);
        let cc = crate::etree::column_counts(&p, &et);
        assert_eq!(cc, vec![6, 5, 4, 3, 2, 1]);
        let group = amalgamate_with(&et, &cc, AmalgRule::Supernode { limit: 16 });
        assert_eq!(*group.iter().max().unwrap(), 0, "single supernode");
        // capped at 3: two supernodes
        let capped = amalgamate_with(&et, &cc, AmalgRule::Supernode { limit: 3 });
        assert_eq!(*capped.iter().max().unwrap(), 1);
    }

    #[test]
    fn supernode_assembly_tree_never_smaller_than_relaxed() {
        let base = grid2d(9, 7, Stencil::Star);
        let p = base.permute(&min_degree(&base).order);
        let et = elimination_tree(&p);
        let cc = crate::etree::column_counts(&p, &et);
        for limit in [2u32, 4, 16] {
            let sn = assembly_tree_with_rule(&et, &cc, AmalgRule::Supernode { limit }).unwrap();
            let rx = assembly_tree_with_rule(&et, &cc, AmalgRule::Relaxed { limit }).unwrap();
            assert!(sn.len() >= rx.len(), "limit {limit}");
            assert!(sn.validate().is_ok());
        }
    }
}
