//! Elimination trees and symbolic Cholesky factorization.
//!
//! The elimination tree of a (permuted) symmetric pattern drives the
//! multifrontal method: `parent(j) = min { i > j : L_ij ≠ 0 }`. We compute
//! it with Liu's ancestor/union-find algorithm (near-linear), and the
//! per-column factor counts `µ_j = |{i ≥ j : L_ij ≠ 0}|` by row-subtree
//! traversal. A quadratic reference symbolic factorization is provided as a
//! cross-check oracle.

use crate::pattern::SparsePattern;

/// Elimination tree over the *eliminated* (permuted) indices `0..n`:
/// `parent[j] = Some(i)` with `i > j`, `None` for roots. Connected patterns
/// give a single root (the last-eliminated vertex).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EliminationTree {
    /// Parent of each column, `None` for roots.
    pub parent: Vec<Option<u32>>,
}

impl EliminationTree {
    /// Number of columns.
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// Indices of the roots (vertices without a parent).
    pub fn roots(&self) -> Vec<u32> {
        self.parent
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_none())
            .map(|(i, _)| i as u32)
            .collect()
    }
}

/// Computes the elimination tree of an already-permuted pattern
/// (Liu's algorithm with path compression).
pub fn elimination_tree(p: &SparsePattern) -> EliminationTree {
    let n = p.n();
    let mut parent: Vec<Option<u32>> = vec![None; n];
    // `ancestor` implements path compression over partially built subtrees
    let mut ancestor: Vec<u32> = (0..n as u32).collect();
    for j in 0..n {
        for &i in p.neighbors(j) {
            let i = i as usize;
            if i >= j {
                continue;
            }
            // climb from i to its current root, compressing
            let mut r = i;
            loop {
                let a = ancestor[r] as usize;
                if a == r || a == j {
                    break;
                }
                r = a;
            }
            // second pass: compress the path to point at j
            let mut c = i;
            while c != r {
                let next = ancestor[c] as usize;
                ancestor[c] = j as u32;
                c = next;
            }
            if r != j && parent[r].is_none() {
                parent[r] = Some(j as u32);
                ancestor[r] = j as u32;
            }
        }
    }
    EliminationTree { parent }
}

/// Per-column nonzero counts of the Cholesky factor `L` (including the
/// diagonal): `µ_j = |{i ≥ j : L_ij ≠ 0}|`, by row-subtree traversal over
/// the elimination tree.
pub fn column_counts(p: &SparsePattern, etree: &EliminationTree) -> Vec<u32> {
    let n = p.n();
    let mut cc = vec![1u32; n]; // diagonal
    let mut mark = vec![u32::MAX; n];
    for i in 0..n {
        mark[i] = i as u32; // the row vertex itself terminates climbs
        for &k in p.neighbors(i) {
            let k = k as usize;
            if k >= i {
                continue;
            }
            // walk up the etree from k towards i, counting row i once per
            // newly visited column
            let mut j = k;
            while mark[j] != i as u32 {
                mark[j] = i as u32;
                cc[j] += 1;
                match etree.parent[j] {
                    Some(pj) => j = pj as usize,
                    None => break,
                }
            }
        }
    }
    cc
}

/// Reference symbolic factorization: the full column structures of `L`
/// (excluding the diagonal), computed by child-merging. Quadratic memory —
/// use only on small patterns and in tests.
pub fn symbolic_factorization(p: &SparsePattern) -> Vec<Vec<u32>> {
    let n = p.n();
    let mut cols: Vec<Vec<u32>> = vec![Vec::new(); n];
    // struct(j) = (adj(j) ∩ {>j}) ∪ (∪_{children c} struct(c) \ {j})
    // computed in increasing j; children are columns whose current minimum
    // row index is j
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    for j in 0..n {
        let mut set: std::collections::BTreeSet<u32> = p
            .neighbors(j)
            .iter()
            .copied()
            .filter(|&i| i as usize > j)
            .collect();
        for &c in &children[j] {
            for &i in &cols[c as usize] {
                if i as usize > j {
                    set.insert(i);
                }
            }
        }
        let col: Vec<u32> = set.into_iter().collect();
        if let Some(&first) = col.first() {
            children[first as usize].push(j as u32);
        }
        cols[j] = col;
    }
    cols
}

/// Total factor nonzeros (both the fill metric and a corpus statistic).
pub fn factor_nnz(column_counts: &[u32]) -> u64 {
    column_counts.iter().map(|&c| c as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{grid2d, random_symmetric, Stencil};
    use crate::ordering::{min_degree, Ordering};

    /// Hand-worked example: the 4-cycle 0-1-2-3-0. Eliminating 0 fills
    /// (1,3); the factor columns are 0:{1,3}, 1:{2,3}, 2:{3}, 3:{}.
    #[test]
    fn four_cycle_by_hand() {
        let p = SparsePattern::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let sym = symbolic_factorization(&p);
        assert_eq!(sym[0], vec![1, 3]);
        assert_eq!(sym[1], vec![2, 3]);
        assert_eq!(sym[2], vec![3]);
        assert!(sym[3].is_empty());
        let et = elimination_tree(&p);
        assert_eq!(et.parent, vec![Some(1), Some(2), Some(3), None]);
        let cc = column_counts(&p, &et);
        assert_eq!(cc, vec![3, 3, 2, 1]);
        assert_eq!(factor_nnz(&cc), 9);
    }

    /// A tridiagonal matrix has a chain elimination tree and no fill.
    #[test]
    fn tridiagonal_chain() {
        let p = crate::generate::band(6, 1);
        let et = elimination_tree(&p);
        for j in 0..5 {
            assert_eq!(et.parent[j], Some(j as u32 + 1));
        }
        assert_eq!(et.parent[5], None);
        let cc = column_counts(&p, &et);
        assert_eq!(cc, vec![2, 2, 2, 2, 2, 1]);
    }

    /// An arrow matrix (dense last row/col) has a star-to-chain etree and no
    /// fill when the hub is eliminated last.
    #[test]
    fn arrow_no_fill() {
        let edges: Vec<(u32, u32)> = (0..5).map(|i| (i, 5u32)).collect();
        let p = SparsePattern::from_edges(6, &edges);
        let et = elimination_tree(&p);
        for j in 0..5 {
            assert_eq!(et.parent[j], Some(5));
        }
        let cc = column_counts(&p, &et);
        assert_eq!(cc, vec![2, 2, 2, 2, 2, 1]);
    }

    /// Column counts agree with the reference symbolic factorization on
    /// assorted patterns and orderings.
    #[test]
    fn counts_match_reference() {
        let cases: Vec<SparsePattern> = vec![
            grid2d(5, 4, Stencil::Star),
            grid2d(4, 4, Stencil::Box),
            random_symmetric(60, 3.0, 11),
            random_symmetric(40, 6.0, 5),
        ];
        for base in cases {
            for ord in [Ordering::natural(base.n()), min_degree(&base)] {
                let p = base.permute(&ord.order);
                let et = elimination_tree(&p);
                let cc = column_counts(&p, &et);
                let sym = symbolic_factorization(&p);
                for (j, col) in sym.iter().enumerate() {
                    assert_eq!(cc[j] as usize, col.len() + 1, "column {j} mismatch");
                }
                // etree parent = first off-diagonal of the factor column
                for (j, col) in sym.iter().enumerate() {
                    assert_eq!(et.parent[j], col.first().copied(), "parent of {j}");
                }
            }
        }
    }

    #[test]
    fn connected_pattern_single_root() {
        let p = grid2d(6, 3, Stencil::Star);
        let et = elimination_tree(&p);
        assert_eq!(et.roots(), vec![p.n() as u32 - 1]);
    }

    #[test]
    fn min_degree_reduces_fill_on_grid() {
        let base = grid2d(10, 10, Stencil::Star);
        let fill = |ord: &Ordering| {
            let p = base.permute(&ord.order);
            let et = elimination_tree(&p);
            factor_nnz(&column_counts(&p, &et))
        };
        let natural = fill(&Ordering::natural(100));
        let md = fill(&min_degree(&base));
        assert!(md < natural, "MD fill {md} should beat natural {natural}");
    }

    #[test]
    fn nested_dissection_reduces_fill_on_grid() {
        let base = grid2d(15, 15, Stencil::Star);
        let fill = |order: &[u32]| {
            let p = base.permute(order);
            let et = elimination_tree(&p);
            factor_nnz(&column_counts(&p, &et))
        };
        let natural = fill(&Ordering::natural(225).order);
        let nd = fill(&crate::ordering::nested_dissection_2d(15, 15).order);
        assert!(nd < natural, "ND fill {nd} should beat natural {natural}");
    }
}
