//! Pattern generators: the offline substitute for the University of Florida
//! Sparse Matrix Collection corpus (see DESIGN.md §3).
//!
//! Three families cover the tree-shape spectrum the paper's corpus spans:
//! grid Laplacians (mesh-like matrices → balanced, deep elimination trees
//! under nested dissection), random symmetric patterns (circuit-like →
//! bushy, irregular trees under minimum degree), and banded matrices
//! (→ chain-like trees).

use crate::pattern::SparsePattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stencil shape for grid Laplacians.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stencil {
    /// 2D: 4 orthogonal neighbors; 3D: 6.
    Star,
    /// 2D: 8 neighbors including diagonals; 3D: 26.
    Box,
}

/// 2D `nx × ny` grid Laplacian pattern (5-point or 9-point stencil).
pub fn grid2d(nx: usize, ny: usize, stencil: Stencil) -> SparsePattern {
    let idx = |x: usize, y: usize| (y * nx + x) as u32;
    let mut edges = Vec::with_capacity(nx * ny * 4);
    for y in 0..ny {
        for x in 0..nx {
            if x + 1 < nx {
                edges.push((idx(x, y), idx(x + 1, y)));
            }
            if y + 1 < ny {
                edges.push((idx(x, y), idx(x, y + 1)));
            }
            if stencil == Stencil::Box && x + 1 < nx && y + 1 < ny {
                edges.push((idx(x, y), idx(x + 1, y + 1)));
                edges.push((idx(x + 1, y), idx(x, y + 1)));
            }
        }
    }
    SparsePattern::from_edges(nx * ny, &edges)
}

/// 3D `nx × ny × nz` grid Laplacian pattern (7-point or 27-point stencil).
pub fn grid3d(nx: usize, ny: usize, nz: usize, stencil: Stencil) -> SparsePattern {
    let idx = |x: usize, y: usize, z: usize| ((z * ny + y) * nx + x) as u32;
    // canonical undirected directions: first nonzero component positive
    let star: &[(i64, i64, i64)] = &[(1, 0, 0), (0, 1, 0), (0, 0, 1)];
    let boxd: &[(i64, i64, i64)] = &[
        (1, 0, 0),
        (0, 1, 0),
        (0, 0, 1),
        (1, 1, 0),
        (1, -1, 0),
        (1, 0, 1),
        (1, 0, -1),
        (0, 1, 1),
        (0, 1, -1),
        (1, 1, 1),
        (1, 1, -1),
        (1, -1, 1),
        (1, -1, -1),
    ];
    let dirs = if stencil == Stencil::Star { star } else { boxd };
    let mut edges = Vec::with_capacity(nx * ny * nz * dirs.len());
    for z in 0..nz as i64 {
        for y in 0..ny as i64 {
            for x in 0..nx as i64 {
                for &(dx, dy, dz) in dirs {
                    let (xx, yy, zz) = (x + dx, y + dy, z + dz);
                    if xx >= 0
                        && xx < nx as i64
                        && yy >= 0
                        && yy < ny as i64
                        && zz >= 0
                        && zz < nz as i64
                    {
                        edges.push((
                            idx(x as usize, y as usize, z as usize),
                            idx(xx as usize, yy as usize, zz as usize),
                        ));
                    }
                }
            }
        }
    }
    SparsePattern::from_edges(nx * ny * nz, &edges)
}

/// Random symmetric pattern with roughly `avg_offdiag` off-diagonal entries
/// per row, plus a Hamiltonian path to guarantee connectivity (so the
/// elimination tree is a single tree, as the paper's corpus assumes).
pub fn random_symmetric(n: usize, avg_offdiag: f64, seed: u64) -> SparsePattern {
    assert!(n >= 2, "need at least two rows");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    // spanning path keeps the graph connected
    for i in 1..n {
        edges.push((i as u32 - 1, i as u32));
    }
    // the path contributes ~2 off-diagonals per row; add the rest randomly
    let extra = ((avg_offdiag - 2.0).max(0.0) * n as f64 / 2.0) as usize;
    for _ in 0..extra {
        let a = rng.gen_range(0..n) as u32;
        let b = rng.gen_range(0..n) as u32;
        if a != b {
            edges.push((a.min(b), a.max(b)));
        }
    }
    SparsePattern::from_edges(n, &edges)
}

/// Arrow pattern: the last `hubs` rows/columns are dense (connected to
/// every other row), the rest are empty off the arrow. With the natural
/// ordering the elimination tree is a star of maximal degree — the source
/// of the very-high-degree assembly trees present in the paper's corpus
/// (max degree up to 175,000 in §6.2).
pub fn arrow(n: usize, hubs: usize) -> SparsePattern {
    assert!(hubs >= 1 && hubs < n, "need 1 <= hubs < n");
    let mut edges = Vec::with_capacity(n * hubs);
    for h in n - hubs..n {
        for i in 0..h {
            edges.push((i as u32, h as u32));
        }
    }
    SparsePattern::from_edges(n, &edges)
}

/// Banded symmetric pattern: row `i` is connected to rows `i±1 .. i±bw`.
pub fn band(n: usize, bw: usize) -> SparsePattern {
    let mut edges = Vec::with_capacity(n * bw);
    for i in 0..n {
        for d in 1..=bw {
            if i + d < n {
                edges.push((i as u32, (i + d) as u32));
            }
        }
    }
    SparsePattern::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2d_degrees() {
        let p = grid2d(3, 3, Stencil::Star);
        assert_eq!(p.n(), 9);
        assert_eq!(p.degree(4), 4); // center
        assert_eq!(p.degree(0), 2); // corner
        assert_eq!(p.degree(1), 3); // edge
        assert!(p.is_connected());
    }

    #[test]
    fn grid2d_box_center_has_eight() {
        let p = grid2d(3, 3, Stencil::Box);
        assert_eq!(p.degree(4), 8);
        assert_eq!(p.degree(0), 3);
    }

    #[test]
    fn grid3d_degrees() {
        let p = grid3d(3, 3, 3, Stencil::Star);
        assert_eq!(p.n(), 27);
        assert_eq!(p.degree(13), 6); // center of the cube
        assert_eq!(p.degree(0), 3); // corner
        let b = grid3d(3, 3, 3, Stencil::Box);
        assert_eq!(b.degree(13), 26);
    }

    #[test]
    fn random_is_connected_and_dense_enough() {
        let p = random_symmetric(500, 5.0, 42);
        assert!(p.is_connected());
        let per_row = p.nnz_offdiag() as f64 / p.n() as f64;
        assert!(per_row > 3.0 && per_row < 7.0, "per-row {per_row}");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        assert_eq!(random_symmetric(100, 4.0, 7), random_symmetric(100, 4.0, 7));
        assert_ne!(random_symmetric(100, 4.0, 7), random_symmetric(100, 4.0, 8));
    }

    #[test]
    fn band_structure() {
        let p = band(6, 2);
        assert_eq!(p.neighbors(0), &[1, 2]);
        assert_eq!(p.neighbors(3), &[1, 2, 4, 5]);
        assert!(p.is_connected());
    }

    #[test]
    fn arrow_structure() {
        let p = arrow(6, 1);
        assert_eq!(p.degree(5), 5); // the hub
        assert_eq!(p.neighbors(0), &[5]);
        assert!(p.is_connected());
        let p2 = arrow(6, 2);
        assert_eq!(p2.degree(4), 5);
        assert_eq!(p2.neighbors(1), &[4, 5]);
    }

    #[test]
    fn arrow_yields_star_etree() {
        let p = arrow(20, 1);
        let et = crate::etree::elimination_tree(&p);
        for j in 0..19 {
            assert_eq!(et.parent[j], Some(19));
        }
    }
}
