//! Sparse-matrix substrate producing the paper's assembly-tree workloads.
//!
//! The paper's corpus (§6.2) runs sparse matrices through
//! `ordering → elimination tree → column counts → relaxed amalgamation →
//! weight formulas`. This crate rebuilds that pipeline from scratch:
//!
//! * [`pattern::SparsePattern`] — symmetric nonzero structures;
//! * [`generate`] — grid Laplacians, random symmetric and banded patterns
//!   (the offline substitute for the UF Sparse Matrix Collection);
//! * [`ordering`] — minimum degree (the `amd` family), reverse
//!   Cuthill–McKee, and geometric nested dissection (the MeTiS role on
//!   grids);
//! * [`etree`] — elimination trees (Liu's algorithm) and factor column
//!   counts, with a reference symbolic factorization as oracle;
//! * [`assembly`] — relaxed node amalgamation and the multifrontal weight
//!   formulas `n_i = η² + 2η(µ−1)`, `w_i = ⅔η³ + η²(µ−1) + η(µ−1)²`,
//!   `f_i = (µ−1)²`.
//!
//! ```
//! use treesched_sparse::{generate, ordering, assembly};
//!
//! let pattern = generate::grid2d(8, 8, generate::Stencil::Star);
//! let order = ordering::min_degree(&pattern);
//! let tree = assembly::assembly_tree_ordered(&pattern, &order, 4).unwrap();
//! assert!(tree.len() <= 64);
//! ```

pub mod assembly;
pub mod etree;
pub mod generate;
pub mod ordering;
pub mod pattern;
pub mod postorder;

pub use assembly::{
    assembly_tree, assembly_tree_ordered, frontal_weights, AmalgRule, FrontalWeights,
};
pub use etree::{column_counts, elimination_tree, EliminationTree};
pub use ordering::Ordering;
pub use pattern::SparsePattern;
pub use postorder::{etree_postorder, is_postordered, permute_etree};
