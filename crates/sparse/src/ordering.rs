//! Fill-reducing orderings: minimum degree, reverse Cuthill–McKee, and
//! geometric nested dissection for grid graphs.
//!
//! These substitute for the `amd` and MeTiS orderings of the paper's corpus
//! pipeline (§6.2): minimum degree is the same algorithmic family as `amd`,
//! and geometric nested dissection is exact on the grid Laplacians where
//! MeTiS would be used on general meshes.

use crate::pattern::SparsePattern;

/// An elimination ordering: `order[k]` is the original vertex eliminated at
/// step `k`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ordering {
    /// `order[k]` = original index of the `k`-th eliminated vertex.
    pub order: Vec<u32>,
}

impl Ordering {
    /// The identity (natural) ordering.
    pub fn natural(n: usize) -> Ordering {
        Ordering {
            order: (0..n as u32).collect(),
        }
    }

    /// Positions: `inverse()[old] = k` such that `order[k] == old`.
    pub fn inverse(&self) -> Vec<u32> {
        let mut inv = vec![u32::MAX; self.order.len()];
        for (k, &old) in self.order.iter().enumerate() {
            inv[old as usize] = k as u32;
        }
        inv
    }

    /// `true` when this is a permutation of `0..n`.
    pub fn is_permutation_of(&self, n: usize) -> bool {
        if self.order.len() != n {
            return false;
        }
        let mut seen = vec![false; n];
        for &v in &self.order {
            if v as usize >= n || seen[v as usize] {
                return false;
            }
            seen[v as usize] = true;
        }
        true
    }
}

/// Reverse Cuthill–McKee: BFS from a pseudo-peripheral vertex, neighbors
/// visited by increasing degree, then reversed. Produces banded structures
/// (chain-like elimination trees) — the "bad for parallelism" end of the
/// ordering spectrum.
pub fn reverse_cuthill_mckee(p: &SparsePattern) -> Ordering {
    let n = p.n();
    if n == 0 {
        return Ordering { order: Vec::new() };
    }
    // pseudo-peripheral start: double BFS sweep from vertex 0
    let far = |start: usize| -> usize {
        let mut dist = vec![u32::MAX; n];
        let mut q = std::collections::VecDeque::new();
        dist[start] = 0;
        q.push_back(start);
        let mut last = start;
        while let Some(v) = q.pop_front() {
            last = v;
            for &u in p.neighbors(v) {
                if dist[u as usize] == u32::MAX {
                    dist[u as usize] = dist[v] + 1;
                    q.push_back(u as usize);
                }
            }
        }
        last
    };
    let start = far(far(0));

    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    // handle disconnected graphs: restart BFS per component
    let mut starts: Vec<usize> = vec![start];
    starts.extend(0..n);
    for s in starts {
        if seen[s] {
            continue;
        }
        seen[s] = true;
        let mut q = std::collections::VecDeque::new();
        q.push_back(s as u32);
        while let Some(v) = q.pop_front() {
            order.push(v);
            let mut nbrs: Vec<u32> = p
                .neighbors(v as usize)
                .iter()
                .copied()
                .filter(|&u| !seen[u as usize])
                .collect();
            nbrs.sort_by_key(|&u| (p.degree(u as usize), u));
            for u in nbrs {
                seen[u as usize] = true;
                q.push_back(u);
            }
        }
    }
    order.reverse();
    Ordering { order }
}

/// Minimum-degree ordering on the quotient (element) graph: at each step the
/// variable of smallest exterior degree is eliminated, its adjacency merged
/// into a new *element*, and the degrees of the affected variables are
/// recomputed exactly. This is the plain (non-approximate, non-supervariable)
/// form of the algorithm behind `amd`.
pub fn min_degree(p: &SparsePattern) -> Ordering {
    let n = p.n();
    let mut adj_vars: Vec<Vec<u32>> = (0..n).map(|i| p.neighbors(i).to_vec()).collect();
    let mut adj_elems: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut elems: Vec<Vec<u32>> = Vec::new(); // element -> member variables
    let mut elem_alive: Vec<bool> = Vec::new();
    let mut var_alive = vec![true; n];
    let mut degree: Vec<usize> = (0..n).map(|i| p.degree(i)).collect();
    // member_mark: which elimination step last saw a variable as a member of
    // the freshly created element (drives adjacency pruning).
    // scan_mark: per degree-recomputation scan (drives set-union counting).
    let mut member_mark = vec![0u32; n];
    let mut scan_mark = vec![0u32; n];
    let mut elim_stamp = 0u32;
    let mut scan_stamp = 0u32;

    // lazy-deletion min-heap of (degree, vertex)
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(usize, u32)>> = (0..n)
        .map(|i| std::cmp::Reverse((degree[i], i as u32)))
        .collect();

    let mut order = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
        let v = v as usize;
        if !var_alive[v] || d != degree[v] {
            continue; // stale entry
        }
        order.push(v as u32);
        var_alive[v] = false;

        // gather the variables of the new element: live var-neighbors plus
        // the members of all adjacent elements
        elim_stamp += 1;
        let mut members: Vec<u32> = Vec::new();
        for &u in &adj_vars[v] {
            let ui = u as usize;
            if var_alive[ui] && member_mark[ui] != elim_stamp {
                member_mark[ui] = elim_stamp;
                members.push(u);
            }
        }
        for &e in &adj_elems[v] {
            if !elem_alive[e as usize] {
                continue;
            }
            for &u in &elems[e as usize] {
                let ui = u as usize;
                if var_alive[ui] && member_mark[ui] != elim_stamp {
                    member_mark[ui] = elim_stamp;
                    members.push(u);
                }
            }
            elem_alive[e as usize] = false; // absorbed
        }
        let e_new = elems.len() as u32;
        elems.push(members.clone());
        elem_alive.push(true);

        // first pass: prune every member's adjacency (vars covered by e_new
        // or dead) and attach the new element
        for &u in &members {
            let ui = u as usize;
            adj_vars[ui].retain(|&w| {
                let wi = w as usize;
                var_alive[wi] && member_mark[wi] != elim_stamp
            });
            adj_elems[ui].retain(|&e| elem_alive[e as usize]);
            adj_elems[ui].push(e_new);
        }
        // second pass: recompute each member's exact exterior degree
        // |adj_vars[u] ∪ (∪_{e ∈ adj_elems[u]} vars(e))  {u}|
        for &u in &members {
            let ui = u as usize;
            scan_stamp += 1;
            scan_mark[ui] = scan_stamp; // exclude self
            let mut deg = 0usize;
            for &w in &adj_vars[ui] {
                let wi = w as usize;
                if var_alive[wi] && scan_mark[wi] != scan_stamp {
                    scan_mark[wi] = scan_stamp;
                    deg += 1;
                }
            }
            for &e in &adj_elems[ui] {
                for &w in &elems[e as usize] {
                    let wi = w as usize;
                    if var_alive[wi] && scan_mark[wi] != scan_stamp {
                        scan_mark[wi] = scan_stamp;
                        deg += 1;
                    }
                }
            }
            degree[ui] = deg;
            heap.push(std::cmp::Reverse((deg, u)));
        }
    }
    Ordering { order }
}

/// Geometric nested dissection for a 2D grid: recursively order the two
/// halves, then the separator line, giving the balanced elimination trees
/// MeTiS would produce on mesh matrices. Vertex `(x, y)` has index
/// `y * nx + x`, matching [`crate::generate::grid2d`].
pub fn nested_dissection_2d(nx: usize, ny: usize) -> Ordering {
    let mut order = Vec::with_capacity(nx * ny);
    rec2(0, nx, 0, ny, nx, &mut order);
    Ordering { order }
}

fn rec2(x0: usize, x1: usize, y0: usize, y1: usize, nx: usize, out: &mut Vec<u32>) {
    let w = x1 - x0;
    let h = y1 - y0;
    if w == 0 || h == 0 {
        return;
    }
    if w * h <= 4 {
        for y in y0..y1 {
            for x in x0..x1 {
                out.push((y * nx + x) as u32);
            }
        }
        return;
    }
    if w >= h {
        let xm = x0 + w / 2;
        rec2(x0, xm, y0, y1, nx, out);
        rec2(xm + 1, x1, y0, y1, nx, out);
        for y in y0..y1 {
            out.push((y * nx + xm) as u32);
        }
    } else {
        let ym = y0 + h / 2;
        rec2(x0, x1, y0, ym, nx, out);
        rec2(x0, x1, ym + 1, y1, nx, out);
        for x in x0..x1 {
            out.push((ym * nx + x) as u32);
        }
    }
}

/// Geometric nested dissection for a 3D grid (separator planes). Vertex
/// `(x, y, z)` has index `(z * ny + y) * nx + x`, matching
/// [`crate::generate::grid3d`].
pub fn nested_dissection_3d(nx: usize, ny: usize, nz: usize) -> Ordering {
    let mut order = Vec::with_capacity(nx * ny * nz);
    rec3(0, nx, 0, ny, 0, nz, nx, ny, &mut order);
    Ordering { order }
}

#[allow(clippy::too_many_arguments)]
fn rec3(
    x0: usize,
    x1: usize,
    y0: usize,
    y1: usize,
    z0: usize,
    z1: usize,
    nx: usize,
    ny: usize,
    out: &mut Vec<u32>,
) {
    let (w, h, d) = (x1 - x0, y1 - y0, z1 - z0);
    if w == 0 || h == 0 || d == 0 {
        return;
    }
    let idx = |x: usize, y: usize, z: usize| ((z * ny + y) * nx + x) as u32;
    if w * h * d <= 8 {
        for z in z0..z1 {
            for y in y0..y1 {
                for x in x0..x1 {
                    out.push(idx(x, y, z));
                }
            }
        }
        return;
    }
    if w >= h && w >= d {
        let xm = x0 + w / 2;
        rec3(x0, xm, y0, y1, z0, z1, nx, ny, out);
        rec3(xm + 1, x1, y0, y1, z0, z1, nx, ny, out);
        for z in z0..z1 {
            for y in y0..y1 {
                out.push(idx(xm, y, z));
            }
        }
    } else if h >= d {
        let ym = y0 + h / 2;
        rec3(x0, x1, y0, ym, z0, z1, nx, ny, out);
        rec3(x0, x1, ym + 1, y1, z0, z1, nx, ny, out);
        for z in z0..z1 {
            for x in x0..x1 {
                out.push(idx(x, ym, z));
            }
        }
    } else {
        let zm = z0 + d / 2;
        rec3(x0, x1, y0, y1, z0, zm, nx, ny, out);
        rec3(x0, x1, y0, y1, zm + 1, z1, nx, ny, out);
        for y in y0..y1 {
            for x in x0..x1 {
                out.push(idx(x, y, zm));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{grid2d, grid3d, random_symmetric, Stencil};

    #[test]
    fn natural_identity() {
        let o = Ordering::natural(5);
        assert_eq!(o.order, vec![0, 1, 2, 3, 4]);
        assert!(o.is_permutation_of(5));
        assert_eq!(o.inverse(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn rcm_is_permutation() {
        let p = grid2d(7, 5, Stencil::Star);
        let o = reverse_cuthill_mckee(&p);
        assert!(o.is_permutation_of(35));
    }

    #[test]
    fn rcm_reduces_bandwidth_on_shuffled_band() {
        // a band matrix permuted randomly: RCM should restore a small
        // bandwidth
        let p = crate::generate::band(60, 2);
        let shuffle: Vec<u32> = {
            // deterministic shuffle
            let mut v: Vec<u32> = (0..60).collect();
            let mut s = 12345u64;
            for i in (1..60usize).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let j = (s >> 33) as usize % (i + 1);
                v.swap(i, j);
            }
            v
        };
        let scrambled = p.permute(&shuffle);
        let bw = |q: &crate::pattern::SparsePattern| -> usize {
            (0..q.n())
                .flat_map(|i| {
                    q.neighbors(i)
                        .iter()
                        .map(move |&j| (i as i64 - j as i64).unsigned_abs() as usize)
                })
                .max()
                .unwrap_or(0)
        };
        let o = reverse_cuthill_mckee(&scrambled);
        let reordered = scrambled.permute(&o.order);
        assert!(
            bw(&reordered) < bw(&scrambled) / 2,
            "{} vs {}",
            bw(&reordered),
            bw(&scrambled)
        );
    }

    #[test]
    fn min_degree_is_permutation() {
        for p in [
            grid2d(6, 6, Stencil::Star),
            grid3d(3, 3, 3, Stencil::Star),
            random_symmetric(200, 4.0, 3),
        ] {
            let o = min_degree(&p);
            assert!(o.is_permutation_of(p.n()));
        }
    }

    #[test]
    fn min_degree_eliminates_leaves_first() {
        // a star graph: the center has degree n-1, the tips degree 1; MD
        // must eliminate at least 6 tips before the center becomes degree-1
        // and eligible (ties allow the hub to go just before the last tip)
        let edges: Vec<(u32, u32)> = (1..8).map(|i| (0u32, i as u32)).collect();
        let p = crate::pattern::SparsePattern::from_edges(8, &edges);
        let o = min_degree(&p);
        let hub_pos = o.order.iter().position(|&v| v == 0).unwrap();
        assert!(hub_pos >= 6, "hub eliminated too early at {hub_pos}");
    }

    #[test]
    fn nested_dissection_2d_is_permutation_and_ends_with_separator() {
        let o = nested_dissection_2d(7, 7);
        assert!(o.is_permutation_of(49));
        // the final entries are the top-level separator column x = 3
        let last7: Vec<u32> = o.order[42..].to_vec();
        let expect: Vec<u32> = (0..7).map(|y| y * 7 + 3).collect();
        assert_eq!(last7, expect);
    }

    #[test]
    fn nested_dissection_3d_is_permutation() {
        let o = nested_dissection_3d(5, 4, 3);
        assert!(o.is_permutation_of(60));
    }

    #[test]
    fn nd_degenerate_sizes() {
        assert!(nested_dissection_2d(1, 9).is_permutation_of(9));
        assert!(nested_dissection_2d(9, 1).is_permutation_of(9));
        assert!(nested_dissection_3d(1, 1, 5).is_permutation_of(5));
    }
}
