//! Symmetric sparse-matrix patterns (structure only — the scheduling
//! problem never needs numerical values).

/// The adjacency structure of a symmetric sparse matrix: vertex `i`
/// corresponds to row/column `i`, and an edge `{i, j}` to a symmetric
/// off-diagonal nonzero pair. Diagonal entries are implicit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparsePattern {
    n: usize,
    /// Sorted, deduplicated neighbor lists without self-loops.
    adj: Vec<Vec<u32>>,
}

impl SparsePattern {
    /// Builds a pattern from undirected edges; duplicates and self-loops are
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics when an endpoint is out of `0..n`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> SparsePattern {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(
                (a as usize) < n && (b as usize) < n,
                "edge ({a},{b}) out of range"
            );
            if a == b {
                continue;
            }
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        for l in &mut adj {
            l.sort_unstable();
            l.dedup();
        }
        SparsePattern { n, adj }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Neighbors (off-diagonal nonzero columns) of row `i`, sorted.
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.adj[i]
    }

    /// Off-diagonal degree of row `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.adj[i].len()
    }

    /// Number of off-diagonal nonzeros (both triangles).
    pub fn nnz_offdiag(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Total nonzeros including the diagonal.
    pub fn nnz(&self) -> usize {
        self.nnz_offdiag() + self.n
    }

    /// Average nonzeros per row (including the diagonal), the corpus
    /// selection metric of the paper (§6.2).
    pub fn nnz_per_row(&self) -> f64 {
        self.nnz() as f64 / self.n as f64
    }

    /// Renumbers the vertices so that `order[k]` becomes vertex `k`
    /// (i.e. applies a symmetric permutation `P A Pᵀ`).
    ///
    /// # Panics
    ///
    /// Panics when `order` is not a permutation of `0..n`.
    pub fn permute(&self, order: &[u32]) -> SparsePattern {
        assert_eq!(order.len(), self.n, "order must cover every vertex");
        let mut inv = vec![u32::MAX; self.n];
        for (new, &old) in order.iter().enumerate() {
            assert!(
                inv[old as usize] == u32::MAX,
                "duplicate vertex {old} in order"
            );
            inv[old as usize] = new as u32;
        }
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); self.n];
        for (new, &old) in order.iter().enumerate() {
            let mut l: Vec<u32> = self.adj[old as usize]
                .iter()
                .map(|&nb| inv[nb as usize])
                .collect();
            l.sort_unstable();
            adj[new] = l;
        }
        SparsePattern { n: self.n, adj }
    }

    /// `true` when the pattern graph is connected (ignoring isolated
    /// vertices makes no sense for factorization, so they count as their own
    /// components).
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &u in &self.adj[v] {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    count += 1;
                    stack.push(u as usize);
                }
            }
        }
        count == self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_dedups_and_sorts() {
        let p = SparsePattern::from_edges(4, &[(0, 1), (1, 0), (2, 1), (3, 3), (0, 3)]);
        assert_eq!(p.neighbors(0), &[1, 3]);
        assert_eq!(p.neighbors(1), &[0, 2]);
        assert_eq!(p.neighbors(3), &[0]); // self-loop dropped
        assert_eq!(p.nnz_offdiag(), 6);
        assert_eq!(p.nnz(), 10);
    }

    #[test]
    fn nnz_per_row() {
        let p = SparsePattern::from_edges(3, &[(0, 1), (1, 2)]);
        assert!((p.nnz_per_row() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn permute_roundtrip() {
        let p = SparsePattern::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let order = vec![3, 1, 0, 2];
        let q = p.permute(&order);
        // new vertex 0 = old 3, neighbors of old 3 = {2} = new 3
        assert_eq!(q.neighbors(0), &[3]);
        // permuting back with the inverse recovers the original
        let mut inv = vec![0u32; 4];
        for (new, &old) in order.iter().enumerate() {
            inv[old as usize] = new as u32;
        }
        assert_eq!(q.permute(&inv), p);
    }

    #[test]
    #[should_panic(expected = "duplicate vertex")]
    fn permute_rejects_non_permutation() {
        let p = SparsePattern::from_edges(3, &[(0, 1)]);
        let _ = p.permute(&[0, 0, 2]);
    }

    #[test]
    fn connectivity() {
        let p = SparsePattern::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(p.is_connected());
        let q = SparsePattern::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!q.is_connected());
    }
}
