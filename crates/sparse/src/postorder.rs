//! Elimination-tree postordering.
//!
//! Renumbering the columns so that the elimination tree is *postordered*
//! (every subtree occupies a contiguous index range, parents after
//! children) is a standard multifrontal preprocessing step: it is an
//! equivalent reordering (same fill, isomorphic etree) that makes
//! stack-based factorization and contiguous supernodes possible.

use crate::etree::EliminationTree;
use crate::ordering::Ordering;

/// Computes a postorder of `etree`: `order[k]` is the old column index that
/// becomes column `k`. Children are visited in increasing old index;
/// multiple roots (forests) are processed in increasing root order.
pub fn etree_postorder(etree: &EliminationTree) -> Ordering {
    let n = etree.n();
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    for j in 0..n {
        if let Some(p) = etree.parent[j] {
            children[p as usize].push(j as u32);
        }
    }
    let mut order = Vec::with_capacity(n);
    for root in etree.roots() {
        // iterative two-stack postorder
        let mut stack = vec![root];
        let mut rev = Vec::new();
        while let Some(v) = stack.pop() {
            rev.push(v);
            stack.extend_from_slice(&children[v as usize]);
        }
        rev.reverse();
        order.extend(rev);
    }
    Ordering { order }
}

/// Applies a column renumbering to the elimination tree itself:
/// `result.parent[new_j]` is the new index of the parent of the old column
/// `order[new_j]`.
pub fn permute_etree(etree: &EliminationTree, order: &[u32]) -> EliminationTree {
    let n = etree.n();
    assert_eq!(order.len(), n);
    let mut inv = vec![u32::MAX; n];
    for (new, &old) in order.iter().enumerate() {
        inv[old as usize] = new as u32;
    }
    let parent = order
        .iter()
        .map(|&old| etree.parent[old as usize].map(|p| inv[p as usize]))
        .collect();
    EliminationTree { parent }
}

/// `true` when the etree is postordered: every parent index exceeds its
/// children and every subtree is a contiguous index range.
pub fn is_postordered(etree: &EliminationTree) -> bool {
    let n = etree.n();
    // first (smallest) descendant of each node, computed bottom-up — valid
    // only if parents come after children, which we check along the way
    let mut first_desc: Vec<usize> = (0..n).collect();
    for j in 0..n {
        if let Some(p) = etree.parent[j] {
            let p = p as usize;
            if p <= j {
                return false;
            }
            first_desc[p] = first_desc[p].min(first_desc[j]);
        }
    }
    // contiguity: the subtree of j must be exactly [first_desc[j], j]
    let mut size = vec![1usize; n];
    for j in 0..n {
        if let Some(p) = etree.parent[j] {
            size[p as usize] += size[j];
        }
        if size[j] != j - first_desc[j] + 1 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etree::elimination_tree;
    use crate::generate::{grid2d, random_symmetric, Stencil};
    use crate::ordering::min_degree;

    #[test]
    fn chain_already_postordered() {
        let p = crate::generate::band(6, 1);
        let et = elimination_tree(&p);
        assert!(is_postordered(&et));
        let po = etree_postorder(&et);
        assert_eq!(po.order, (0..6).collect::<Vec<u32>>());
    }

    #[test]
    fn postorders_arbitrary_etrees() {
        for base in [grid2d(7, 5, Stencil::Star), random_symmetric(80, 4.0, 3)] {
            let ord = min_degree(&base);
            let p = base.permute(&ord.order);
            let et = elimination_tree(&p);
            let po = etree_postorder(&et);
            assert!(po.is_permutation_of(p.n()));
            let reordered = permute_etree(&et, &po.order);
            assert!(is_postordered(&reordered), "not postordered");
            // isomorphism: same number of roots, same subtree size multiset
            assert_eq!(reordered.roots().len(), et.roots().len());
        }
    }

    #[test]
    fn postordered_pattern_keeps_fill() {
        // postordering is an equivalent reordering: identical column-count
        // multiset and total fill
        let base = grid2d(8, 8, Stencil::Star);
        let ord = min_degree(&base);
        let p = base.permute(&ord.order);
        let et = elimination_tree(&p);
        let mut cc = crate::etree::column_counts(&p, &et);

        let po = etree_postorder(&et);
        let p2 = p.permute(&po.order);
        let et2 = elimination_tree(&p2);
        let mut cc2 = crate::etree::column_counts(&p2, &et2);
        assert!(is_postordered(&et2));

        cc.sort_unstable();
        cc2.sort_unstable();
        assert_eq!(cc, cc2);
    }

    #[test]
    fn detects_non_postordered() {
        // parent below child
        let et = EliminationTree {
            parent: vec![Some(2), Some(2), None, Some(4), None],
        };
        assert!(is_postordered(&et));
        // non-contiguous subtree: 0 -> 3, 1 -> 2, 2 -> 3: subtree of 3 is
        // {0,1,2,3} contiguous; but subtree of 2 = {1,2} contiguous... build
        // a genuinely broken one: 0 -> 2, 1 -> 3, 2 -> 3? subtree(2) = {0,2}
        // is NOT contiguous ({0,2} misses 1)
        let et = EliminationTree {
            parent: vec![Some(2), Some(3), Some(3), None],
        };
        assert!(!is_postordered(&et));
    }
}
