//! Property-based validation of the sparse substrate against the reference
//! symbolic factorization.

use proptest::prelude::*;
use treesched_model::ValidateExt;
use treesched_sparse::{assembly, etree, ordering, pattern::SparsePattern, postorder};

/// Random connected symmetric pattern: a spanning path plus random extra
/// edges.
fn arb_pattern(max_n: usize) -> impl Strategy<Value = SparsePattern> {
    (3..=max_n)
        .prop_flat_map(|n| {
            let extra = proptest::collection::vec((0..n as u32, 0..n as u32), 0..3 * n);
            (Just(n), extra)
        })
        .prop_map(|(n, extra)| {
            let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (i - 1, i)).collect();
            edges.extend(extra.into_iter().filter(|(a, b)| a != b));
            SparsePattern::from_edges(n, &edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn etree_and_counts_match_symbolic_oracle(p in arb_pattern(40)) {
        let et = etree::elimination_tree(&p);
        let cc = etree::column_counts(&p, &et);
        let sym = etree::symbolic_factorization(&p);
        for j in 0..p.n() {
            prop_assert_eq!(et.parent[j], sym[j].first().copied(), "parent of {}", j);
            prop_assert_eq!(cc[j] as usize, sym[j].len() + 1, "count of {}", j);
        }
    }

    #[test]
    fn orderings_are_permutations(p in arb_pattern(40)) {
        prop_assert!(ordering::min_degree(&p).is_permutation_of(p.n()));
        prop_assert!(ordering::reverse_cuthill_mckee(&p).is_permutation_of(p.n()));
    }

    #[test]
    fn min_degree_never_increases_fill_vs_reverse_ordering(p in arb_pattern(30)) {
        // weak sanity: MD fill is no worse than the *reversed natural*
        // ordering (an arbitrary fixed competitor) on the large majority of
        // instances; we assert only against catastrophic regression (2x)
        let fill = |q: &SparsePattern| {
            let et = etree::elimination_tree(q);
            etree::factor_nnz(&etree::column_counts(q, &et))
        };
        let md = ordering::min_degree(&p);
        let md_fill = fill(&p.permute(&md.order));
        let rev: Vec<u32> = (0..p.n() as u32).rev().collect();
        let rev_fill = fill(&p.permute(&rev));
        prop_assert!(md_fill <= rev_fill * 2, "MD {} vs reversed {}", md_fill, rev_fill);
    }

    #[test]
    fn etree_postorder_preserves_structure(p in arb_pattern(40)) {
        let et = etree::elimination_tree(&p);
        let po = postorder::etree_postorder(&et);
        prop_assert!(po.is_permutation_of(p.n()));
        let reordered = postorder::permute_etree(&et, &po.order);
        prop_assert!(postorder::is_postordered(&reordered));
        // re-deriving the etree from the permuted pattern gives the same
        // postordered tree (postordering is an equivalent reordering)
        let p2 = p.permute(&po.order);
        let et2 = etree::elimination_tree(&p2);
        prop_assert_eq!(&reordered.parent, &et2.parent);
    }

    #[test]
    fn assembly_trees_valid_for_all_rules(p in arb_pattern(36), limit in 1u32..=8) {
        let et = etree::elimination_tree(&p);
        let cc = etree::column_counts(&p, &et);
        for rule in [
            assembly::AmalgRule::Relaxed { limit },
            assembly::AmalgRule::Supernode { limit },
        ] {
            let t = assembly::assembly_tree_with_rule(&et, &cc, rule)
                .expect("connected patterns give a tree");
            prop_assert!(t.validate().is_ok());
            prop_assert!(t.len() <= p.n());
            // group sizes never exceed the cap: total η = #columns
            let total_eta: f64 = t.ids().map(|i| {
                // invert n_i = η² + 2η(µ−1) is awkward; instead check η via
                // node count bound: every node holds ≥ 1, ≤ limit columns
                let _ = i;
                1.0
            }).sum();
            prop_assert!(total_eta as usize <= p.n());
            prop_assert!(t.len() >= p.n().div_ceil(limit as usize));
        }
    }
}
