//! The serve daemon: one long-lived engine loop, many clients, bounded
//! per-client submission queues.
//!
//! A [`Daemon`] owns a single [`ServeEngine`] (and therefore one set of
//! warm worker scratches and one tree cache) on a dedicated engine-loop
//! thread. Clients attach with [`Daemon::client`] and get two halves:
//!
//! * a [`Submitter`] that pushes raw JSONL request lines in, and
//! * an ordered response [`Receiver`] that yields framed response records
//!   (see [`mod@crate::frame`]) in **completion order**.
//!
//! The engine loop alternates between collecting a window of queued
//! operations and draining the engine with
//! [`ServeEngine::drain_with`] — each result is routed to its client the
//! moment it completes, so a slow request never delays responses for
//! other requests or other clients.
//!
//! # Backpressure
//!
//! Every client has a bounded in-flight budget
//! ([`DaemonConfig::inflight_cap`]): the number of submitted lines whose
//! responses have not yet been handed to the transport. When the budget
//! is exhausted, [`Submitter::submit_blocking`] blocks the submitting
//! thread (the socket transport's choice — the client's writes back up in
//! the socket buffer), while [`Submitter::submit_or_overload`] instead
//! answers the line immediately with a typed
//! [`SchedError::Overloaded`] record. Either way, **every submitted line
//! gets exactly one response** — the daemon never drops a line and never
//! panics on overload.
//!
//! # Observability
//!
//! Every daemon carries a [`MetricsRegistry`]: request/response/shed/
//! malformed counters, an aggregate in-flight gauge, a log2 histogram of
//! framed-response latency, and parse/drain stage spans. A client line
//! of exactly `{"op":"metrics"}` is answered — in its response slot,
//! like any other line — with one snapshot record
//! (`{"op":"metrics","requests_total":...,...}`); any other `"op"` line
//! is a typed malformed-request record. [`Daemon::metrics_json`] fetches
//! the same snapshot out-of-band. Metrics stay outside byte-identity:
//! data-line responses are byte-identical to the batch front-end's.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use treesched_core::{Platform, SchedError, SchedulerRegistry};
use treesched_obs::{Counter, Gauge, Histogram, MetricsRegistry, Span};
use treesched_serve::jsonl::{parse_object, Value};
use treesched_serve::{
    error_json, malformed_json, result_json, JsonRecord, ServeEngine, ServeStats,
};

use crate::frame::frame;
use crate::proto::RequestParser;

/// Configuration of a [`Daemon`].
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Engine worker threads (clamped to at least one).
    pub workers: usize,
    /// Per-client in-flight budget (clamped to at least one): the maximum
    /// number of submitted lines awaiting responses before backpressure
    /// kicks in.
    pub inflight_cap: usize,
    /// Default platform for requests that spell none of their own —
    /// the daemon-side equivalent of `serve --speeds/--domains`.
    pub default_platform: Option<Platform>,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            workers: 2,
            inflight_cap: 64,
            default_platform: None,
        }
    }
}

/// Per-client in-flight counter: a condvar-guarded semaphore.
struct Inflight {
    cap: usize,
    n: Mutex<usize>,
    cv: Condvar,
}

impl Inflight {
    fn new(cap: usize) -> Inflight {
        Inflight {
            cap: cap.max(1),
            n: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut n = self.n.lock().expect("inflight lock");
        while *n >= self.cap {
            n = self.cv.wait(n).expect("inflight lock");
        }
        *n += 1;
    }

    fn try_acquire(&self) -> bool {
        let mut n = self.n.lock().expect("inflight lock");
        if *n >= self.cap {
            return false;
        }
        *n += 1;
        true
    }

    fn release(&self) {
        let mut n = self.n.lock().expect("inflight lock");
        *n = n.saturating_sub(1);
        self.cv.notify_one();
    }
}

/// The daemon's metric handles, resolved once against its registry.
/// Registration order here is field order in every snapshot record.
struct Meters {
    registry: Arc<MetricsRegistry>,
    requests: Arc<Counter>,
    responses: Arc<Counter>,
    overloaded: Arc<Counter>,
    malformed: Arc<Counter>,
    inflight: Arc<Gauge>,
    engine_mirrors: Vec<Arc<Counter>>,
    latency: Arc<Histogram>,
    parse_span: Arc<Span>,
    drain_span: Arc<Span>,
}

/// Snapshot names of the engine counters, mirrored in [`ServeStats`]
/// field order (see [`Meters::mirror_engine`]).
const ENGINE_MIRRORS: [&str; 8] = [
    "engine_requests_total",
    "engine_batches_total",
    "traversal_computes_total",
    "traversal_reuses_total",
    "subtree_views_total",
    "subtree_clones_total",
    "worker_lost_total",
    "reroutes_total",
];

impl Meters {
    fn new() -> Meters {
        let registry = Arc::new(MetricsRegistry::new());
        Meters {
            requests: registry.counter("requests_total"),
            responses: registry.counter("responses_total"),
            overloaded: registry.counter("overloaded_total"),
            malformed: registry.counter("malformed_total"),
            inflight: registry.gauge("inflight"),
            engine_mirrors: ENGINE_MIRRORS.iter().map(|n| registry.counter(n)).collect(),
            latency: registry.histogram("response_latency_us"),
            parse_span: registry.span("span_parse"),
            drain_span: registry.span("span_drain"),
            registry,
        }
    }

    /// Copies the engine's counters into their snapshot mirrors.
    fn mirror_engine(&self, stats: ServeStats) {
        let values = [
            stats.requests,
            stats.batches,
            stats.traversal_computes,
            stats.traversal_reuses,
            stats.subtree_views,
            stats.subtree_clones,
            stats.worker_lost,
            stats.reroutes,
        ];
        for (mirror, value) in self.engine_mirrors.iter().zip(values) {
            mirror.store(value);
        }
    }

    /// Renders one snapshot record. `count_self` books the record itself
    /// as a response *before* rendering, so an otherwise idle daemon
    /// shows `requests_total == responses_total` — the conservation
    /// invariant CI greps for.
    fn snapshot_record(&self, stats: ServeStats, count_self: bool) -> String {
        if count_self {
            self.responses.inc();
        }
        self.mirror_engine(stats);
        self.registry
            .snapshot()
            .append(JsonRecord::new().str("op", "metrics"))
            .line()
    }
}

/// Classifies `line` as a control request: `None` for data lines,
/// `Some(Ok(()))` for a well-formed `{"op":"metrics"}`, `Some(Err(_))`
/// for any other line carrying an `"op"` key.
fn classify_control(line: &str) -> Option<Result<(), String>> {
    let pairs = parse_object(line).ok()?;
    pairs
        .iter()
        .any(|(k, _)| k == "op")
        .then(|| match pairs.as_slice() {
            [(_, Value::Str(op))] if op == "metrics" => Ok(()),
            [(_, Value::Str(op))] => Err(format!("unknown control op `{op}` (expected `metrics`)")),
            [(_, _)] => Err("control `op` must be a string".to_string()),
            _ => Err("a control request holds exactly one key, `op`".to_string()),
        })
}

enum Op {
    Register {
        client: u64,
        tx: Sender<String>,
        inflight: Arc<Inflight>,
    },
    Submit {
        client: u64,
        seq: u64,
        lineno: usize,
        line: String,
        at: Instant,
    },
    Stats {
        reply: Sender<ServeStats>,
    },
    Metrics {
        reply: Sender<String>,
    },
    Shutdown,
}

/// The submitting half of a client connection.
pub struct Submitter {
    client: u64,
    seq: u64,
    cap: usize,
    ops: Sender<Op>,
    inflight: Arc<Inflight>,
    loopback: Sender<String>,
    meters: Arc<Meters>,
}

impl Submitter {
    /// Submits one non-empty request line, blocking while the client's
    /// in-flight budget is exhausted. `lineno` is the 1-based line number
    /// in the client's input stream (it surfaces in typed malformed-line
    /// records). Returns the line's client-local submission index — the
    /// `n` its framed response will carry.
    pub fn submit_blocking(&mut self, lineno: usize, line: &str) -> u64 {
        self.inflight.acquire();
        self.meters.inflight.inc();
        self.dispatch(lineno, line)
    }

    /// As [`Submitter::submit_blocking`], but when the in-flight budget is
    /// exhausted the line is answered immediately with a typed
    /// [`SchedError::Overloaded`] record instead of blocking. The line
    /// still consumes a submission index and still gets exactly one
    /// response — overload sheds *work*, never responses.
    pub fn submit_or_overload(&mut self, lineno: usize, line: &str) -> u64 {
        if self.inflight.try_acquire() {
            self.meters.inflight.inc();
            return self.dispatch(lineno, line);
        }
        let seq = self.next();
        self.meters.overloaded.inc();
        self.meters.responses.inc();
        self.meters.latency.record(0);
        let record = error_json(
            None,
            &SchedError::Overloaded { limit: self.cap }.to_string(),
        );
        let _ = self.loopback.send(frame(seq, &record));
        seq
    }

    fn dispatch(&mut self, lineno: usize, line: &str) -> u64 {
        let seq = self.next();
        let op = Op::Submit {
            client: self.client,
            seq,
            lineno,
            line: line.to_string(),
            at: Instant::now(),
        };
        if self.ops.send(op).is_err() {
            // the daemon is gone: the engine loop will never release this
            // slot or answer this line — do both here so the client still
            // sees one response per line and never deadlocks
            self.inflight.release();
            self.meters.inflight.dec();
            self.meters.responses.inc();
            let record = error_json(None, "serve daemon is shut down");
            let _ = self.loopback.send(frame(seq, &record));
        }
        seq
    }

    fn next(&mut self) -> u64 {
        // every line ever submitted counts, whatever answers it
        self.meters.requests.inc();
        let seq = self.seq;
        self.seq += 1;
        seq
    }

    /// Lines submitted so far (including overloaded ones) — exactly the
    /// number of framed responses the client will receive.
    pub fn submitted(&self) -> u64 {
        self.seq
    }
}

/// One attached client: the submitting half plus the ordered response
/// channel of framed records.
pub struct ClientHandle {
    /// Pushes request lines in.
    pub submitter: Submitter,
    /// Yields framed response records in completion order.
    pub responses: Receiver<String>,
}

impl ClientHandle {
    /// Splits the handle for use from two threads (a transport's reader
    /// and writer sides).
    pub fn split(self) -> (Submitter, Receiver<String>) {
        (self.submitter, self.responses)
    }

    /// Convenience for tests and in-process callers: submits every
    /// non-empty line of `input`, waits for every response, and returns
    /// the reconstructed batch output (stable-sorted by submission index,
    /// frames stripped).
    pub fn run_batch(mut self, input: &str, block: bool) -> String {
        for (k, line) in input.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            if block {
                self.submitter.submit_blocking(k + 1, line);
            } else {
                self.submitter.submit_or_overload(k + 1, line);
            }
        }
        let mut lines = Vec::with_capacity(self.submitter.submitted() as usize);
        for _ in 0..self.submitter.submitted() {
            match self.responses.recv() {
                Ok(line) => lines.push(line),
                Err(_) => break, // daemon gone mid-stream
            }
        }
        crate::frame::reorder(lines.iter().map(|s| s.as_str()))
            .expect("the daemon frames every response")
    }
}

/// A running serve daemon: handle to the engine-loop thread.
///
/// Dropping the daemon shuts the engine loop down after it finishes the
/// operations already queued; drop (or detach) all clients first — a
/// submitter blocked on a full in-flight budget can only be released by
/// the engine loop.
pub struct Daemon {
    ops: Sender<Op>,
    next_client: AtomicU64,
    cap: usize,
    meters: Arc<Meters>,
    handle: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Spawns the engine loop over its own registry.
    pub fn new(registry: SchedulerRegistry, config: DaemonConfig) -> Daemon {
        Daemon::with_registry(Arc::new(registry), config)
    }

    /// As [`Daemon::new`], over a shared registry.
    pub fn with_registry(registry: Arc<SchedulerRegistry>, config: DaemonConfig) -> Daemon {
        let cap = config.inflight_cap.max(1);
        let meters = Arc::new(Meters::new());
        let loop_meters = Arc::clone(&meters);
        let (ops, ops_rx) = channel();
        let handle =
            std::thread::spawn(move || engine_loop(&ops_rx, &registry, config, &loop_meters));
        Daemon {
            ops,
            next_client: AtomicU64::new(0),
            cap,
            meters,
            handle: Some(handle),
        }
    }

    /// Attaches a new client with a fresh in-flight budget.
    pub fn client(&self) -> ClientHandle {
        let client = self.next_client.fetch_add(1, Ordering::Relaxed);
        let (tx, responses) = channel();
        let inflight = Arc::new(Inflight::new(self.cap));
        let _ = self.ops.send(Op::Register {
            client,
            tx: tx.clone(),
            inflight: Arc::clone(&inflight),
        });
        ClientHandle {
            submitter: Submitter {
                client,
                seq: 0,
                cap: self.cap,
                ops: self.ops.clone(),
                inflight,
                loopback: tx,
                meters: Arc::clone(&self.meters),
            },
            responses,
        }
    }

    /// Aggregate engine counters, fetched through the engine loop.
    pub fn stats(&self) -> ServeStats {
        let (reply, rx) = channel();
        if self.ops.send(Op::Stats { reply }).is_err() {
            return ServeStats::default();
        }
        rx.recv().unwrap_or_default()
    }

    /// The current metrics snapshot as one JSONL record — the same
    /// record a client gets for a `{"op":"metrics"}` line, fetched
    /// out-of-band (it takes no response slot and books no response).
    /// Empty when the engine loop is already gone.
    pub fn metrics_json(&self) -> String {
        let (reply, rx) = channel();
        if self.ops.send(Op::Metrics { reply }).is_err() {
            return String::new();
        }
        rx.recv().unwrap_or_default()
    }

    /// The daemon's metric registry, for scraping or embedding
    /// (Prometheus-style text via
    /// [`MetricsSnapshot::to_prometheus`](treesched_obs::MetricsSnapshot::to_prometheus)).
    /// Engine-counter mirrors refresh only when a snapshot record is
    /// rendered; prefer [`Daemon::metrics_json`] for consistent reads.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.meters.registry)
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.ops.send(Op::Shutdown);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

struct ClientState {
    tx: Sender<String>,
    inflight: Arc<Inflight>,
}

fn engine_loop(
    ops: &Receiver<Op>,
    registry: &Arc<SchedulerRegistry>,
    config: DaemonConfig,
    meters: &Meters,
) {
    let mut engine = ServeEngine::with_registry(Arc::clone(registry), config.workers);
    let mut parser = RequestParser::new(config.default_platform);
    let mut clients: HashMap<u64, ClientState> = HashMap::new();
    // engine submission index -> (client, client-local index, submit time)
    let mut route: HashMap<u64, (u64, u64, Instant)> = HashMap::new();
    let mut shutdown = false;
    while !shutdown {
        // one window: block for the first operation, then absorb whatever
        // else is already queued, then drain — so a burst becomes one
        // engine window (same-tree batching applies across clients) while
        // a lone request is served immediately
        let first = match ops.recv() {
            Ok(op) => op,
            Err(_) => break, // every handle dropped
        };
        shutdown = handle_op(
            first,
            &mut engine,
            &mut parser,
            &mut clients,
            &mut route,
            meters,
        );
        while !shutdown {
            match ops.try_recv() {
                Ok(op) => {
                    shutdown = handle_op(
                        op,
                        &mut engine,
                        &mut parser,
                        &mut clients,
                        &mut route,
                        meters,
                    )
                }
                Err(_) => break,
            }
        }
        if engine.queued() > 0 {
            let _drain = meters.drain_span.enter();
            let mut dead: Vec<u64> = Vec::new();
            let routes = &mut route;
            let attached = &clients;
            engine.drain_with(|result| {
                let Some((client, seq, at)) = routes.remove(&result.index) else {
                    return;
                };
                meters.responses.inc();
                meters.latency.record(at.elapsed().as_micros() as u64);
                meters.inflight.dec();
                let Some(state) = attached.get(&client) else {
                    return; // client detached; nothing waits on the slot
                };
                let gone = state.tx.send(frame(seq, &result_json(&result))).is_err();
                state.inflight.release();
                if gone {
                    dead.push(client);
                }
            });
            for client in dead {
                clients.remove(&client);
            }
        }
    }
}

/// Applies one operation; returns `true` on shutdown.
fn handle_op(
    op: Op,
    engine: &mut ServeEngine,
    parser: &mut RequestParser,
    clients: &mut HashMap<u64, ClientState>,
    route: &mut HashMap<u64, (u64, u64, Instant)>,
    meters: &Meters,
) -> bool {
    match op {
        Op::Register {
            client,
            tx,
            inflight,
        } => {
            clients.insert(client, ClientState { tx, inflight });
        }
        Op::Submit {
            client,
            seq,
            lineno,
            line,
            at,
        } => {
            let Some(state) = clients.get(&client) else {
                return false; // detached while ops were queued
            };
            // control requests (an `"op"` key) answer from the daemon
            // itself, before the request parser — which rightly rejects
            // `op` as an unknown request key — ever sees the line
            let answer = match classify_control(&line) {
                Some(Ok(())) => {
                    // book this line as answered *before* rendering, so
                    // an otherwise idle snapshot shows itself conserved
                    meters.inflight.dec();
                    Some(meters.snapshot_record(engine.stats(), true))
                }
                Some(Err(reason)) => {
                    meters.inflight.dec();
                    meters.malformed.inc();
                    meters.responses.inc();
                    Some(malformed_json(lineno, &reason))
                }
                None => {
                    let parsed = meters.parse_span.time(|| parser.build(lineno, &line));
                    match parsed {
                        Ok(request) => {
                            let index = engine.submit(request);
                            route.insert(index, (client, seq, at));
                            None
                        }
                        Err(record) => {
                            meters.inflight.dec();
                            meters.malformed.inc();
                            meters.responses.inc();
                            Some(record)
                        }
                    }
                }
            };
            if let Some(record) = answer {
                // control and protocol/file-error lines answer without
                // touching the engine; the slot frees immediately
                meters.latency.record(at.elapsed().as_micros() as u64);
                let gone = state.tx.send(frame(seq, &record)).is_err();
                state.inflight.release();
                if gone {
                    clients.remove(&client);
                }
            }
        }
        Op::Stats { reply } => {
            let _ = reply.send(engine.stats());
        }
        Op::Metrics { reply } => {
            let _ = reply.send(meters.snapshot_record(engine.stats(), false));
        }
        Op::Shutdown => return true,
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{batch_reference, fixtures, stream};

    #[test]
    fn streamed_responses_resorted_match_the_batch_output() {
        let input = stream("a");
        let daemon = Daemon::new(SchedulerRegistry::standard(), DaemonConfig::default());
        let got = daemon.client().run_batch(&input, true);
        assert_eq!(got, batch_reference(&input));
    }

    #[test]
    fn protocol_errors_stream_back_with_their_line_numbers() {
        let (fork, _) = fixtures();
        let input = format!(
            "{{\"id\":\"ok\",\"tree\":\"{fork}\",\"processors\":2}}\n\
             not json\n\
             \n\
             {{\"id\":\"late\",\"tree\":\"{fork}\",\"processors\":3}}\n"
        );
        let daemon = Daemon::new(SchedulerRegistry::standard(), DaemonConfig::default());
        let got = daemon.client().run_batch(&input, true);
        assert_eq!(got, batch_reference(&input));
        let lines: Vec<&str> = got.lines().collect();
        assert_eq!(lines.len(), 3, "blank line takes no slot");
        assert!(
            lines[1].starts_with("{\"id\":null,\"error\":\"bad request on line 2:"),
            "physical line number survives the daemon: {}",
            lines[1]
        );
        assert!(lines[1].ends_with("\"line\":2}"));
    }

    #[test]
    fn concurrent_clients_share_one_warm_engine_without_loss() {
        let daemon = Daemon::new(SchedulerRegistry::standard(), DaemonConfig::default());
        // same trees from both clients: the second stream must reuse the
        // first's warm traversal caches (one engine, shared by clients)
        let handles: Vec<_> = ["a", "b"]
            .map(|tag| {
                let client = daemon.client();
                let input = stream(tag);
                std::thread::spawn(move || (tag, client.run_batch(&input, true), input))
            })
            .into_iter()
            .collect();
        for handle in handles {
            let (tag, got, input) = handle.join().unwrap();
            let expected = batch_reference(&input);
            assert_eq!(got.lines().count(), input.lines().count());
            assert_eq!(got, expected, "client {tag} stream intact");
        }
        let stats = daemon.stats();
        assert_eq!(stats.requests, 2 * 12, "every request served exactly once");
        assert_eq!(stats.subtree_clones, 0, "hot path stays allocation-free");
    }

    #[test]
    fn a_second_client_hits_the_first_clients_warm_caches() {
        // one tree only, clients strictly in sequence: the traversal
        // count is deterministic — however the engine windows the
        // submissions, every batch after the first reuses the single
        // cached traversal, so client b runs entirely warm
        let (fork, _) = fixtures();
        let daemon = Daemon::new(SchedulerRegistry::standard(), DaemonConfig::default());
        for tag in ["a", "b"] {
            let input: String = (0..4)
                .map(|k| {
                    format!(
                        "{{\"id\":\"{tag}{k}\",\"tree\":\"{fork}\",\"processors\":{}}}\n",
                        2 + k
                    )
                })
                .collect();
            let got = daemon.client().run_batch(&input, true);
            assert_eq!(got.lines().count(), 4);
            assert!(!got.contains("\"error\""), "{got}");
        }
        let stats = daemon.stats();
        assert_eq!(stats.requests, 8);
        assert_eq!(
            stats.traversal_computes, 1,
            "one tree, one cold traversal across both clients: {stats:?}"
        );
        assert_eq!(stats.traversal_reuses, 7, "{stats:?}");
    }

    /// A scheduler that sleeps before delegating — for holding the
    /// in-flight budget open long enough to observe backpressure.
    struct Slow {
        millis: u64,
    }
    impl treesched_core::Scheduler for Slow {
        fn name(&self) -> &'static str {
            "Slow"
        }
        fn schedule(
            &self,
            req: &treesched_core::Request<'_>,
            s: &mut treesched_core::Scratch,
        ) -> Result<treesched_core::Outcome, SchedError> {
            std::thread::sleep(std::time::Duration::from_millis(self.millis));
            SchedulerRegistry::standard()
                .get("deepest")
                .expect("built-in")
                .schedule(req, s)
        }
    }

    fn slow_registry(millis: u64) -> SchedulerRegistry {
        let mut registry = SchedulerRegistry::standard();
        registry
            .register(Box::new(Slow { millis }), &[], false)
            .unwrap();
        registry
    }

    fn slow_line(tree: &str, k: usize) -> String {
        format!("{{\"id\":\"s{k}\",\"tree\":\"{tree}\",\"processors\":2,\"scheduler\":\"Slow\"}}")
    }

    #[test]
    fn overload_sheds_work_but_never_responses() {
        let (fork, _) = fixtures();
        let daemon = Daemon::new(
            slow_registry(150),
            DaemonConfig {
                inflight_cap: 1,
                ..DaemonConfig::default()
            },
        );
        let (mut submitter, responses) = daemon.client().split();
        for k in 0..4 {
            submitter.submit_or_overload(k + 1, &slow_line(&fork, k));
        }
        let mut seqs = Vec::new();
        let mut overloaded = 0;
        for _ in 0..submitter.submitted() {
            let line = responses.recv().expect("every line answered");
            let (n, record) = crate::frame::unframe(&line).unwrap();
            seqs.push(n);
            if record.contains("client queue overloaded: 1 requests already in flight") {
                overloaded += 1;
            }
        }
        seqs.sort_unstable();
        assert_eq!(seqs, vec![0, 1, 2, 3], "every line exactly one response");
        assert!(
            (1..=3).contains(&overloaded),
            "a full budget sheds load as typed records (got {overloaded})"
        );
    }

    #[test]
    fn blocking_submission_under_a_tiny_budget_loses_nothing() {
        let (fork, _) = fixtures();
        let daemon = Daemon::new(
            slow_registry(10),
            DaemonConfig {
                inflight_cap: 1,
                ..DaemonConfig::default()
            },
        );
        let input: String = (0..5).map(|k| slow_line(&fork, k) + "\n").collect();
        let got = daemon.client().run_batch(&input, true);
        assert_eq!(got.lines().count(), 5);
        assert!(
            !got.contains("overloaded"),
            "blocking submission never sheds: {got}"
        );
        for (k, line) in got.lines().enumerate() {
            assert!(line.starts_with(&format!("{{\"id\":\"s{k}\"")), "{line}");
            assert!(!line.contains("\"error\""), "{line}");
        }
    }

    #[test]
    fn a_dead_worker_surfaces_as_typed_records_not_lost_responses() {
        let (fork, chain) = fixtures();
        let mut registry = SchedulerRegistry::standard();
        struct Panicky;
        impl treesched_core::Scheduler for Panicky {
            fn name(&self) -> &'static str {
                "Panicky"
            }
            fn schedule(
                &self,
                _req: &treesched_core::Request<'_>,
                _s: &mut treesched_core::Scratch,
            ) -> Result<treesched_core::Outcome, SchedError> {
                panic!("scheduler bug")
            }
        }
        registry.register(Box::new(Panicky), &[], false).unwrap();
        let daemon = Daemon::new(
            registry,
            DaemonConfig {
                workers: 3,
                ..DaemonConfig::default()
            },
        );
        let mut input = String::new();
        for k in 0..4 {
            input.push_str(&format!(
                "{{\"id\":\"ok{k}\",\"tree\":\"{chain}\",\"processors\":2}}\n"
            ));
        }
        input.push_str(&format!(
            "{{\"id\":\"doomed\",\"tree\":\"{fork}\",\"processors\":2,\
             \"scheduler\":\"Panicky\"}}\n"
        ));
        let got = daemon.client().run_batch(&input, true);
        let lines: Vec<&str> = got.lines().collect();
        assert_eq!(lines.len(), 5, "every line answered exactly once");
        assert!(
            lines[4].contains("\"id\":\"doomed\"") && lines[4].contains("worker"),
            "the doomed line comes back as a typed worker-lost record: {}",
            lines[4]
        );
        for line in &lines[..4] {
            assert!(!line.contains("\"error\""), "{line}");
        }
    }

    #[test]
    fn metrics_line_answers_with_a_conserving_snapshot() {
        let input = stream("a");
        let daemon = Daemon::new(SchedulerRegistry::standard(), DaemonConfig::default());
        // serve a full data batch first; run_batch returns only after
        // every response was delivered, so the daemon is idle again
        let got = daemon.client().run_batch(&input, true);
        assert_eq!(got, batch_reference(&input), "data lines undisturbed");
        let data_lines = input.lines().filter(|l| !l.trim().is_empty()).count() as u64;

        // a second client asks for the snapshot in-band
        let snapshot = daemon.client().run_batch("{\"op\":\"metrics\"}\n", true);
        assert!(snapshot.starts_with("{\"op\":\"metrics\","), "{snapshot}");
        let n = data_lines + 1; // the metrics line itself is counted
        assert!(
            snapshot.contains(&format!("\"requests_total\":{n},\"responses_total\":{n}")),
            "idle daemon conserves requests == responses: {snapshot}"
        );
        assert!(snapshot.contains("\"worker_lost_total\":0"), "{snapshot}");
        assert!(snapshot.contains("\"inflight\":0"), "{snapshot}");
        assert!(
            snapshot.contains(&format!("\"engine_requests_total\":{data_lines}")),
            "{snapshot}"
        );
        // the latency histogram saw every engine-served response, each
        // sample in exactly one bucket (count == Σ buckets)
        let hist = snapshot
            .split("\"response_latency_us\":{\"count\":")
            .nth(1)
            .expect("histogram present");
        let count: u64 = hist.split(',').next().unwrap().parse().unwrap();
        let buckets: u64 = hist
            .split("\"buckets\":[")
            .nth(1)
            .and_then(|s| s.split(']').next())
            .expect("buckets array")
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| s.parse::<u64>().unwrap())
            .sum();
        assert_eq!(
            count, buckets,
            "every sample in exactly one bucket: {snapshot}"
        );

        // out-of-band fetch sees the same totals and books no response
        let again = daemon.metrics_json();
        assert!(
            again.contains(&format!("\"requests_total\":{n},\"responses_total\":{n}")),
            "{again}"
        );
    }

    #[test]
    fn malformed_control_requests_answer_with_typed_records() {
        let daemon = Daemon::new(SchedulerRegistry::standard(), DaemonConfig::default());
        let got = daemon.client().run_batch(
            "{\"op\":\"status\"}\n\
             {\"op\":\"metrics\",\"x\":1}\n\
             {\"op\":3}\n",
            true,
        );
        let lines: Vec<&str> = got.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(
            lines[0].starts_with("{\"id\":null,\"error\":\"bad request on line 1: ")
                && lines[0].contains("unknown control op `status` (expected `metrics`)")
                && lines[0].ends_with("\"line\":1}"),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].contains("a control request holds exactly one key, `op`"),
            "{}",
            lines[1]
        );
        assert!(
            lines[2].contains("control `op` must be a string"),
            "{}",
            lines[2]
        );
        let snapshot = daemon.metrics_json();
        assert!(snapshot.contains("\"malformed_total\":3"), "{snapshot}");
        assert!(
            snapshot.contains("\"requests_total\":3,\"responses_total\":3"),
            "{snapshot}"
        );
    }

    #[test]
    fn shed_lines_count_as_overloaded_and_conserve() {
        let (fork, _) = fixtures();
        let daemon = Daemon::new(
            slow_registry(150),
            DaemonConfig {
                inflight_cap: 1,
                ..DaemonConfig::default()
            },
        );
        let (mut submitter, responses) = daemon.client().split();
        for k in 0..4 {
            submitter.submit_or_overload(k + 1, &slow_line(&fork, k));
        }
        for _ in 0..submitter.submitted() {
            responses.recv().expect("every line answered");
        }
        let snapshot = daemon.metrics_json();
        assert!(
            snapshot.contains("\"requests_total\":4,\"responses_total\":4"),
            "{snapshot}"
        );
        let shed: u64 = snapshot
            .split("\"overloaded_total\":")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.parse().ok())
            .expect("overloaded_total present");
        assert!((1..=3).contains(&shed), "sheds counted: {snapshot}");
    }

    #[test]
    fn daemon_shutdown_answers_straggler_submissions_as_data() {
        let (fork, _) = fixtures();
        let client = {
            let daemon = Daemon::new(SchedulerRegistry::standard(), DaemonConfig::default());
            daemon.client()
            // daemon drops here: engine loop shuts down
        };
        let (mut submitter, responses) = client.split();
        submitter.submit_blocking(1, &slow_line(&fork, 0));
        let line = responses.recv().expect("answered locally");
        let (n, record) = crate::frame::unframe(&line).unwrap();
        assert_eq!(n, 0);
        assert!(record.contains("serve daemon is shut down"), "{record}");
    }
}
