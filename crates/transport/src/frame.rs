//! Submission-index framing of streamed response records.
//!
//! Daemon transports deliver responses in **completion order**, not
//! submission order. So that a client can reconstruct the exact byte
//! stream the batch `serve` front-end would have produced, every streamed
//! record is prefixed — inside the JSON object itself — with the
//! client-local submission index under the reserved key `"n"`:
//!
//! ```text
//! batch record:    {"id":"a","scheduler":...}
//! framed record:   {"n":3,"id":"a","scheduler":...}
//! ```
//!
//! The frame is pure transport metadata: [`unframe`] strips it and returns
//! the original record byte-for-byte, and [`reorder`] applies the full
//! client-side recipe (stable sort by `n`, strip frames, concatenate) that
//! reproduces the batch output.
//!
//! `"n"` can never collide with a payload key: every response record the
//! serving protocol emits starts with its `"id"` field, and request records
//! reject unknown keys, so `"n"` is free for the wire.

/// Wraps one response record (one JSON object line, trailing newline
/// included) with the client-local submission index `n`.
///
/// # Panics
///
/// Panics if `record` is not a JSON object line (does not start with `{`) —
/// every record the serving protocol produces is.
pub fn frame(n: u64, record: &str) -> String {
    let rest = record
        .strip_prefix('{')
        .expect("response records are JSON object lines");
    format!("{{\"n\":{n},{rest}")
}

/// Splits one framed line into the submission index and the original
/// record (trailing newline restored if the input carried one).
///
/// Fails with a description when the line does not carry a leading
/// `{"n":<digits>,` frame — a client talking to a non-daemon endpoint
/// should surface that, not guess.
pub fn unframe(line: &str) -> Result<(u64, String), String> {
    let rest = line
        .strip_prefix("{\"n\":")
        .ok_or_else(|| format!("response line carries no `n` frame: {line}"))?;
    let digits_end = rest
        .find(|c: char| !c.is_ascii_digit())
        .ok_or_else(|| format!("truncated `n` frame: {line}"))?;
    let n: u64 = rest[..digits_end]
        .parse()
        .map_err(|_| format!("bad `n` frame: {line}"))?;
    let body = rest[digits_end..]
        .strip_prefix(',')
        .ok_or_else(|| format!("malformed `n` frame: {line}"))?;
    Ok((n, format!("{{{body}")))
}

/// Client-side reconstruction of the batch byte stream: unframes every
/// line, stable-sorts by submission index, and concatenates the records.
///
/// Each input line is one framed record; lines missing a trailing newline
/// get one, so the result is a well-formed JSONL document.
pub fn reorder<'a>(lines: impl IntoIterator<Item = &'a str>) -> Result<String, String> {
    let mut framed: Vec<(u64, String)> = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let (n, mut record) = unframe(line)?;
        if !record.ends_with('\n') {
            record.push('\n');
        }
        framed.push((n, record));
    }
    framed.sort_by_key(|&(n, _)| n);
    Ok(framed.into_iter().map(|(_, r)| r).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_and_unframe_round_trip() {
        let record = "{\"id\":\"a\",\"makespan\":4.5}\n";
        let framed = frame(7, record);
        assert_eq!(framed, "{\"n\":7,\"id\":\"a\",\"makespan\":4.5}\n");
        assert_eq!(unframe(&framed), Ok((7, record.to_string())));
    }

    #[test]
    fn unframe_rejects_unframed_and_mangled_lines() {
        for bad in [
            "{\"id\":\"a\"}",      // no frame at all
            "{\"n\":}",            // no digits
            "{\"n\":12",           // truncated
            "{\"n\":12\"id\":1}",  // missing comma
            "{\"n\":9e9,\"x\":1}", // non-integer index
        ] {
            assert!(unframe(bad).is_err(), "{bad} must not unframe");
        }
    }

    #[test]
    fn reorder_restores_submission_order_and_strips_frames() {
        let records = [
            "{\"id\":\"r0\"}\n",
            "{\"id\":\"r1\"}\n",
            "{\"id\":\"r2\"}\n",
        ];
        // completion order 2, 0, 1; the middle line arrives without its
        // newline, as a socket read would deliver it
        let framed = [
            frame(2, records[2]),
            frame(0, records[0]).trim_end().to_string(),
            frame(1, records[1]),
        ];
        let got = reorder(framed.iter().map(|s| s.as_str())).unwrap();
        assert_eq!(got, records.concat());
    }
}
