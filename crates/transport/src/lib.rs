//! Streaming serve daemon: long-lived transports over the serving engine.
//!
//! The [`treesched_serve`] engine batches and shards a request *window*;
//! this crate wraps it into a *daemon* that serves request **streams**
//! over real transports, so many client processes share one warm-cache
//! engine:
//!
//! * [`Daemon`] — one engine-loop thread over a single
//!   [`treesched_serve::ServeEngine`]; clients attach with
//!   [`Daemon::client`] and get an ordered per-client response channel.
//!   Responses stream out in **completion order**, each framed (see
//!   [`mod@frame`]) with its client-local submission index `n`, so a client
//!   that stable-sorts by `n` reconstructs the batch `serve` output
//!   byte-for-byte.
//! * **Backpressure** — every client has a bounded in-flight budget
//!   ([`DaemonConfig::inflight_cap`]). A full budget either blocks the
//!   submitting transport ([`Submitter::submit_blocking`]) or answers
//!   lines immediately with typed
//!   [`treesched_core::SchedError::Overloaded`] records
//!   ([`Submitter::submit_or_overload`]); either way every submitted line
//!   gets exactly one response — overload sheds work, never responses.
//! * **Transports** — the JSONL protocol framed over a stdio pipe
//!   ([`serve_stdio`], the `serve --stdio` loop) and a Unix-domain socket
//!   ([`listen_unix`] / [`connect_unix`], the `serve --listen` /
//!   `connect` pair).
//! * **Graceful drain** — the stoppable transport variants
//!   ([`listen_unix_stoppable`], [`serve_stdio_stoppable`]) watch an
//!   atomic stop flag (wired to SIGTERM by [`signal::term_flag`] in the
//!   CLI): on stop they take no new work, answer everything already
//!   submitted, and return so the process can flush a final metrics
//!   snapshot and exit 0.
//! * **Observability** — every daemon carries a
//!   [`treesched_obs::MetricsRegistry`]; clients fetch a live snapshot
//!   in-band with a `{"op":"metrics"}` request line, embedders with
//!   [`Daemon::metrics_json`] (see the [`daemon`] module docs).
//! * [`RequestParser`] — the shared per-line front-end (parse, tree
//!   cache, platform defaulting, scheduler defaulting) used by **both**
//!   the one-shot batch `serve` command and the daemon, which is what
//!   makes streamed-equals-batch a structural guarantee instead of a
//!   convention.
//!
//! ```
//! use treesched_core::SchedulerRegistry;
//! use treesched_transport::{Daemon, DaemonConfig};
//!
//! let daemon = Daemon::new(SchedulerRegistry::standard(), DaemonConfig::default());
//! // no requests yet: stats round-trip through the engine loop
//! assert_eq!(daemon.stats().requests, 0);
//! ```

pub mod daemon;
pub mod frame;
pub mod proto;
#[cfg(unix)]
pub mod signal;
#[cfg(unix)]
pub mod socket;
pub mod stdio;

mod pump;
#[cfg(test)]
pub(crate) mod testutil;

pub use daemon::{ClientHandle, Daemon, DaemonConfig, Submitter};
pub use frame::{frame, reorder, unframe};
pub use proto::{default_scheduler, RequestParser};
#[cfg(unix)]
pub use socket::{connect_unix, listen_unix, listen_unix_stoppable, ListenOptions};
pub use stdio::{serve_stdio, serve_stdio_stoppable};
