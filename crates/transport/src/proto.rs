//! The shared per-line request front-end: one JSONL request line in, one
//! [`ServeRequest`] (or one finished error record) out.
//!
//! Both front-ends of the serving protocol — the one-shot batch `serve`
//! command and the long-lived daemon transports — build their engine
//! requests through this one type. That is what makes the acceptance
//! guarantee *structural* rather than aspirational: a streamed response
//! stream, stable-sorted by submission index, is byte-identical to the
//! batch output because both paths parse, resolve, default, and render
//! through exactly the same code.
//!
//! Resolution per line, in order:
//!
//! 1. [`RequestRecord::parse`] — a malformed line becomes a typed
//!    [`malformed_json`] record carrying the 1-based line number;
//! 2. tree lookup through the parser's cache (one load per distinct path
//!    for the parser's lifetime — the daemon keeps one parser, so every
//!    client shares the warm cache);
//! 3. platform: the request's own spec, else the front-end default, else
//!    an error record;
//! 4. scheduler: the request's own name, else the platform-aware
//!    [`default_scheduler`].

use std::collections::HashMap;
use std::sync::Arc;
use treesched_core::Platform;
use treesched_model::{io as tree_io, TaskTree};
use treesched_serve::{error_json, malformed_json, RequestRecord, ServeRequest};

/// Default scheduler when a request names none, shared by `schedule`,
/// batch `serve`, and the daemon: a comm-bearing platform gets the
/// comm-aware `ParDeepestFirst` (subtree and capped schedulers refuse
/// transfer costs), a platform with a shared cap gets the safe
/// memory-capped scheduler, an uncapped equal-speed one the paper's
/// `ParSubtrees`, and a mixed-speed one the speed-aware `ParDeepestFirst`.
/// A capped *mixed-speed* platform still resolves to `MemBoundedSeq` so
/// per-domain caps are enforced rather than silently ignored.
pub fn default_scheduler(platform: &Platform) -> &'static str {
    if platform.has_comm() {
        "ParDeepestFirst"
    } else if platform.memory_cap().is_some() || !platform.domains().is_empty() {
        "MemBoundedSeq"
    } else if platform.uniform_speed().is_some() {
        "ParSubtrees"
    } else {
        "ParDeepestFirst"
    }
}

/// Stateful request front-end: tree cache plus the front-end's default
/// platform for requests that spell none of their own.
pub struct RequestParser {
    trees: HashMap<String, Arc<TaskTree>>,
    default_platform: Option<Platform>,
}

impl RequestParser {
    /// A parser with an empty tree cache.
    pub fn new(default_platform: Option<Platform>) -> RequestParser {
        RequestParser {
            trees: HashMap::new(),
            default_platform,
        }
    }

    /// Builds the engine request for one non-empty request line.
    ///
    /// `lineno` is the 1-based input line number of the client's stream —
    /// it only surfaces in the typed malformed-line record. The `Err`
    /// variant is a **finished response record** (newline included), ready
    /// to take the line's slot in the output stream.
    pub fn build(&mut self, lineno: usize, line: &str) -> Result<ServeRequest, String> {
        let record = match RequestRecord::parse(line) {
            Ok(r) => r,
            Err(e) => return Err(malformed_json(lineno, &e)),
        };
        let id = record.id.clone();
        let tree = match self.trees.get(&record.tree) {
            Some(t) => Arc::clone(t),
            None => match load_tree(&record.tree) {
                Ok(t) => {
                    let t = Arc::new(t);
                    self.trees.insert(record.tree.clone(), Arc::clone(&t));
                    t
                }
                Err(e) => return Err(error_json(id.as_deref(), &e)),
            },
        };
        let platform = match (&record.platform, &self.default_platform) {
            (Some(spec), _) => spec.to_platform(),
            (None, Some(default)) => default.clone(),
            (None, None) => {
                return Err(error_json(
                    id.as_deref(),
                    "request needs `processors` or a `platform` object",
                ))
            }
        };
        let scheduler = record
            .scheduler
            .clone()
            .unwrap_or_else(|| default_scheduler(&platform).to_string());
        let mut request = ServeRequest::new(tree, scheduler, platform);
        if let Some(seq) = record.seq {
            request = request.with_seq(seq);
        }
        if let Some(seed) = record.seed {
            request = request.with_seed(seed);
        }
        if let Some(id) = id {
            request = request.with_id(id);
        }
        Ok(request)
    }

    /// Number of distinct tree paths loaded so far.
    pub fn cached_trees(&self) -> usize {
        self.trees.len()
    }
}

/// Loads a tree file with the CLI's exact error wording — these strings
/// are part of the response protocol (they travel in `error` fields and
/// are pinned by the golden files).
fn load_tree(path: &str) -> Result<TaskTree, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    tree_io::from_text(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_file(name: &str, tree: &TaskTree) -> String {
        let dir = std::env::temp_dir().join("treesched-transport-proto");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, tree_io::to_text(tree)).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn well_formed_lines_build_requests_and_cache_trees() {
        let path = tree_file("fork.tree", &TaskTree::fork(4, 1.0, 1.0, 0.0));
        let mut parser = RequestParser::new(None);
        let line = format!("{{\"id\":\"a\",\"tree\":\"{path}\",\"processors\":2}}");
        let req = parser.build(1, &line).expect("builds");
        assert_eq!(req.id.as_deref(), Some("a"));
        assert_eq!(req.scheduler, "ParSubtrees", "platform-aware default");
        let req2 = parser.build(2, &line).expect("builds again");
        assert!(
            Arc::ptr_eq(&req.problem.tree, &req2.problem.tree),
            "second hit shares the cached Arc"
        );
        assert_eq!(parser.cached_trees(), 1);
    }

    #[test]
    fn error_lines_render_the_batch_records_byte_for_byte() {
        let mut parser = RequestParser::new(None);
        // malformed JSON: typed record with the 1-based line number
        let err = parser.build(9, "not json").unwrap_err();
        assert_eq!(err, malformed_json(9, "expected `{` at byte 0"));
        // unreadable tree: the CLI's exact `cannot read` wording
        let err = parser
            .build(
                1,
                "{\"id\":\"x\",\"tree\":\"/nope/missing.tree\",\"processors\":2}",
            )
            .unwrap_err();
        assert!(err.starts_with("{\"id\":\"x\",\"error\":\"cannot read /nope/missing.tree:"));
        // platform-less request without a front-end default
        let path = tree_file("chain.tree", &TaskTree::chain(3, 1.0, 1.0, 0.0));
        let err = parser
            .build(2, &format!("{{\"tree\":\"{path}\"}}"))
            .unwrap_err();
        assert_eq!(
            err,
            error_json(None, "request needs `processors` or a `platform` object")
        );
        // ...and with one, the default platform applies
        let mut parser = RequestParser::new(Some(Platform::new(3)));
        let req = parser
            .build(2, &format!("{{\"tree\":\"{path}\"}}"))
            .expect("defaulted");
        assert_eq!(req.problem.platform, Platform::new(3));
    }

    #[test]
    fn default_scheduler_is_platform_aware() {
        assert_eq!(default_scheduler(&Platform::new(2)), "ParSubtrees");
        assert_eq!(
            default_scheduler(&Platform::new(2).with_memory_cap(8.0)),
            "MemBoundedSeq"
        );
        let mixed = Platform::heterogeneous(vec![
            treesched_core::ProcClass::new(1, 2.0),
            treesched_core::ProcClass::new(1, 1.0),
        ]);
        assert_eq!(default_scheduler(&mixed), "ParDeepestFirst");
        // split memory defaults to the domain-enforcing capped scheduler
        let split = mixed.clone().with_domain(8.0, &[0]).with_domain(8.0, &[1]);
        assert_eq!(default_scheduler(&split), "MemBoundedSeq");
        // ...unless transfers cost something — then only the comm-aware
        // list schedulers apply
        let comm = split.with_comm(vec![0.0, 1.0, 1.0, 0.0]);
        assert_eq!(default_scheduler(&comm), "ParDeepestFirst");
    }
}
