//! The per-connection pump shared by every byte-stream transport: a
//! reader loop (the calling thread) feeding the [`Submitter`], and a
//! writer thread forwarding framed responses as they complete.

use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::time::Duration;

use crate::daemon::ClientHandle;

/// Streams one connection: reads JSONL request lines from `input` until
/// EOF, submits each (blocking on the in-flight budget when `block`,
/// shedding typed `Overloaded` records otherwise), and concurrently
/// writes every framed response to `output` the moment it completes.
///
/// Returns once EOF has been read **and** every submitted line has been
/// answered (or the peer hung up): the delivered-response count plus the
/// output handle, so callers can close or inspect it.
pub(crate) fn pump<W: Write + Send + 'static>(
    client: ClientHandle,
    input: impl BufRead,
    output: W,
    block: bool,
) -> std::io::Result<(u64, W)> {
    let (mut submitter, responses) = client.split();
    // total submissions, unknown (u64::MAX) until the reader hits EOF;
    // the writer exits when it has delivered exactly that many
    let total = Arc::new(AtomicU64::new(u64::MAX));
    let writer_total = Arc::clone(&total);
    let writer = std::thread::spawn(move || {
        let mut output = output;
        let mut delivered = 0u64;
        loop {
            match responses.recv_timeout(Duration::from_millis(25)) {
                Ok(line) => {
                    let sent = output
                        .write_all(line.as_bytes())
                        .and_then(|()| output.flush());
                    if sent.is_err() {
                        break; // peer hung up; responses stop here
                    }
                    delivered += 1;
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            if writer_total.load(Ordering::Acquire) == delivered {
                break;
            }
        }
        (delivered, output)
    });
    let mut lineno = 0usize;
    for line in input.lines() {
        lineno += 1; // physical line number, blank lines included
        let line = match line {
            Ok(line) => line,
            Err(_) => break, // treat a broken read side as EOF
        };
        if line.trim().is_empty() {
            continue;
        }
        if block {
            submitter.submit_blocking(lineno, &line);
        } else {
            submitter.submit_or_overload(lineno, &line);
        }
    }
    total.store(submitter.submitted(), Ordering::Release);
    writer
        .join()
        .map_err(|_| std::io::Error::other("response writer panicked"))
}

/// As [`pump`], but drains gracefully when `stop` latches: the reader
/// stops consuming lines at the next line boundary, every line already
/// submitted is answered, and the call returns the delivered count.
///
/// The thread layout is inverted from [`pump`] so the *writer* owns the
/// calling thread: the reader runs detached, because a reader blocked in
/// a `read` syscall (an idle stdin pipe, say) cannot be interrupted from
/// safe code — on stop it is simply left behind and the process exits
/// around it. Transports that *can* force the read side to EOF (socket
/// `shutdown(Read)`) get a prompt drain; stdio gets a bounded one.
pub(crate) fn pump_stoppable<R: BufRead + Send + 'static, W: Write>(
    client: ClientHandle,
    input: R,
    mut output: W,
    block: bool,
    stop: &'static AtomicBool,
) -> std::io::Result<u64> {
    let (mut submitter, responses) = client.split();
    // total submissions, unknown (u64::MAX) until the reader hits EOF or
    // observes stop; `so_far` trails it for the stop-drain cutoff
    let total = Arc::new(AtomicU64::new(u64::MAX));
    let so_far = Arc::new(AtomicU64::new(0));
    let reader_total = Arc::clone(&total);
    let reader_so_far = Arc::clone(&so_far);
    std::thread::spawn(move || {
        let mut lineno = 0usize;
        for line in input.lines() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            lineno += 1; // physical line number, blank lines included
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            if block {
                submitter.submit_blocking(lineno, &line);
            } else {
                submitter.submit_or_overload(lineno, &line);
            }
            reader_so_far.store(submitter.submitted(), Ordering::Release);
        }
        reader_total.store(submitter.submitted(), Ordering::Release);
    });
    let mut delivered = 0u64;
    let mut idle_after_stop = 0u32;
    loop {
        match responses.recv_timeout(Duration::from_millis(25)) {
            Ok(line) => {
                if output
                    .write_all(line.as_bytes())
                    .and_then(|()| output.flush())
                    .is_err()
                {
                    break; // peer hung up; responses stop here
                }
                delivered += 1;
                idle_after_stop = 0;
            }
            Err(RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::SeqCst) {
                    idle_after_stop += 1;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
        if total.load(Ordering::Acquire) == delivered {
            break; // reader finished and every line is answered
        }
        // stop-drain cutoff: everything submitted so far is answered and
        // two idle rounds passed (grace for a submission racing the latch)
        if stop.load(Ordering::SeqCst)
            && idle_after_stop >= 2
            && delivered >= so_far.load(Ordering::Acquire)
        {
            break;
        }
    }
    Ok(delivered)
}
