//! The per-connection pump shared by every byte-stream transport: a
//! reader loop (the calling thread) feeding the [`Submitter`], and a
//! writer thread forwarding framed responses as they complete.

use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::time::Duration;

use crate::daemon::ClientHandle;

/// Streams one connection: reads JSONL request lines from `input` until
/// EOF, submits each (blocking on the in-flight budget when `block`,
/// shedding typed `Overloaded` records otherwise), and concurrently
/// writes every framed response to `output` the moment it completes.
///
/// Returns once EOF has been read **and** every submitted line has been
/// answered (or the peer hung up): the delivered-response count plus the
/// output handle, so callers can close or inspect it.
pub(crate) fn pump<W: Write + Send + 'static>(
    client: ClientHandle,
    input: impl BufRead,
    output: W,
    block: bool,
) -> std::io::Result<(u64, W)> {
    let (mut submitter, responses) = client.split();
    // total submissions, unknown (u64::MAX) until the reader hits EOF;
    // the writer exits when it has delivered exactly that many
    let total = Arc::new(AtomicU64::new(u64::MAX));
    let writer_total = Arc::clone(&total);
    let writer = std::thread::spawn(move || {
        let mut output = output;
        let mut delivered = 0u64;
        loop {
            match responses.recv_timeout(Duration::from_millis(25)) {
                Ok(line) => {
                    let sent = output
                        .write_all(line.as_bytes())
                        .and_then(|()| output.flush());
                    if sent.is_err() {
                        break; // peer hung up; responses stop here
                    }
                    delivered += 1;
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            if writer_total.load(Ordering::Acquire) == delivered {
                break;
            }
        }
        (delivered, output)
    });
    let mut lineno = 0usize;
    for line in input.lines() {
        lineno += 1; // physical line number, blank lines included
        let line = match line {
            Ok(line) => line,
            Err(_) => break, // treat a broken read side as EOF
        };
        if line.trim().is_empty() {
            continue;
        }
        if block {
            submitter.submit_blocking(lineno, &line);
        } else {
            submitter.submit_or_overload(lineno, &line);
        }
    }
    total.store(submitter.submitted(), Ordering::Release);
    writer
        .join()
        .map_err(|_| std::io::Error::other("response writer panicked"))
}
