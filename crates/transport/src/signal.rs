//! A minimal SIGTERM latch for graceful daemon drains — no signal
//! crate, just the POSIX `signal(2)` registration writing one atomic
//! flag.
//!
//! The handler does the only async-signal-safe thing a drain needs: it
//! sets a process-wide [`AtomicBool`]. Transports poll the flag between
//! blocking steps ([`crate::listen_unix_stoppable`],
//! [`crate::serve_stdio_stoppable`]) and wind down on their own
//! schedule: stop accepting, answer everything in flight, exit cleanly.
//!
//! Tests (and embedders that manage signals themselves) drive the same
//! drain paths by passing their own flag — nothing here is required for
//! the stoppable transports to work.

use std::sync::atomic::{AtomicBool, Ordering};

const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_signum: i32) {
    TERM.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM handler and returns the process-wide flag it
/// latches. Safe to call more than once; the flag never resets.
pub fn term_flag() -> &'static AtomicBool {
    // SAFETY: registering an async-signal-safe handler (one atomic
    // store, no allocation, no locks) via POSIX signal(2).
    unsafe {
        signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
    }
    &TERM
}

/// Whether SIGTERM has been received since [`term_flag`] installed the
/// handler.
pub fn term_requested() -> bool {
    TERM.load(Ordering::SeqCst)
}
