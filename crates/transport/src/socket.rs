//! The Unix-domain socket transport: many client processes, one warm
//! engine.
//!
//! [`listen_unix`] accepts connections on a socket path and serves each
//! over the shared [`Daemon`] — every connection is one client with its
//! own in-flight budget and its own framed response stream, while the
//! engine's worker scratches and tree cache are shared across all of
//! them. [`connect_unix`] is the matching client: it pumps a request
//! stream in, collects the framed responses, and (unless asked for the
//! raw stream) reconstructs the exact batch output by stable-sorting on
//! the submission index.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::daemon::{ClientHandle, Daemon};
use crate::pump::pump;

/// Options of [`listen_unix`].
#[derive(Clone, Copy, Debug)]
pub struct ListenOptions {
    /// Stop after this many connections (served to completion); `None`
    /// listens forever. Bounded accepts make daemon lifetimes
    /// deterministic in tests and scripted pipelines.
    pub accept: Option<u64>,
    /// Backpressure mode: `true` blocks a connection's read loop while
    /// its in-flight budget is full (the client's writes back up in the
    /// socket buffer); `false` answers excess lines with typed
    /// `Overloaded` records instead.
    pub block: bool,
}

impl Default for ListenOptions {
    fn default() -> ListenOptions {
        ListenOptions {
            accept: None,
            block: true,
        }
    }
}

/// Binds `path` (replacing a stale socket file) and serves connections
/// over `daemon` until the accept budget is spent. Each connection runs
/// on its own thread; the call returns — with the number of connections
/// served — once every accepted connection has completed.
pub fn listen_unix(daemon: &Daemon, path: &Path, options: ListenOptions) -> std::io::Result<u64> {
    static NEVER: AtomicBool = AtomicBool::new(false);
    listen_unix_stoppable(daemon, path, options, &NEVER)
}

/// As [`listen_unix`], but drains gracefully when `stop` latches (a
/// SIGTERM flag from [`crate::signal::term_flag`], or any test-owned
/// atomic): the listener stops accepting, every open connection's read
/// side is shut down so its pump sees EOF, and the call returns — with
/// the connection count — once every already-submitted line has been
/// answered and flushed.
pub fn listen_unix_stoppable(
    daemon: &Daemon,
    path: &Path,
    options: ListenOptions,
    stop: &AtomicBool,
) -> std::io::Result<u64> {
    let _ = std::fs::remove_file(path); // stale socket from a dead daemon
    let listener = UnixListener::bind(path)?;
    // nonblocking accepts so the loop can observe `stop` between polls
    listener.set_nonblocking(true)?;
    // read halves of live connections, for the stop-time EOF broadcast
    let open: Mutex<Vec<UnixStream>> = Mutex::new(Vec::new());
    let mut served = 0u64;
    std::thread::scope(|scope| {
        loop {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((stream, _addr)) => {
                    stream.set_nonblocking(false)?;
                    if let Ok(clone) = stream.try_clone() {
                        open.lock().expect("socket list poisoned").push(clone);
                    }
                    let client = daemon.client();
                    let block = options.block;
                    scope.spawn(move || handle_conn(stream, client, block));
                    served += 1;
                    if options.accept.is_some_and(|budget| served >= budget) {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
        if stop.load(Ordering::SeqCst) {
            // force every pump's reader to EOF: in-flight lines drain,
            // no new lines enter (shutdown spans all clones of a socket)
            for conn in open.lock().expect("socket list poisoned").iter() {
                let _ = conn.shutdown(std::net::Shutdown::Read);
            }
        }
        Ok::<(), std::io::Error>(())
        // the scope joins every connection thread: each pump returns only
        // after its submitted lines are answered and written back
    })?;
    let _ = std::fs::remove_file(path);
    Ok(served)
}

/// Serves one accepted connection: socket lines in, framed responses out,
/// then a write-side shutdown so the client sees EOF after its last
/// response.
fn handle_conn(stream: UnixStream, client: ClientHandle, block: bool) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(stream);
    if let Ok((_delivered, write_half)) = pump(client, reader, write_half, block) {
        let _ = write_half.shutdown(std::net::Shutdown::Write);
    }
}

/// Connects to a serve daemon at `path`, streams `input`'s request lines
/// to it, and writes the responses to `output`: the reconstructed batch
/// stream (sorted by submission index, frames stripped) by default, or
/// the framed records in arrival order with `raw`.
///
/// The input pump runs on its own thread so responses are consumed while
/// requests are still being written — required for liveness once either
/// side exerts backpressure.
pub fn connect_unix(
    path: &Path,
    input: impl BufRead + Send + 'static,
    mut output: impl Write,
    raw: bool,
) -> std::io::Result<()> {
    let stream = UnixStream::connect(path)?;
    let mut write_half = stream.try_clone()?;
    let feeder = std::thread::spawn(move || -> std::io::Result<()> {
        let mut input = input;
        let mut line = String::new();
        loop {
            line.clear();
            if input.read_line(&mut line)? == 0 {
                break;
            }
            if !line.ends_with('\n') {
                line.push('\n');
            }
            write_half.write_all(line.as_bytes())?;
            write_half.flush()?;
        }
        write_half.shutdown(std::net::Shutdown::Write)
    });
    let mut collected: Vec<String> = Vec::new();
    for line in BufReader::new(stream).lines() {
        let line = line?;
        if raw {
            writeln!(output, "{line}")?;
        } else {
            collected.push(line);
        }
    }
    let _ = feeder.join();
    if !raw {
        let text = crate::frame::reorder(collected.iter().map(|s| s.as_str()))
            .map_err(std::io::Error::other)?;
        output.write_all(text.as_bytes())?;
    }
    output.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::DaemonConfig;
    use crate::testutil::{batch_reference, stream};
    use std::io::Cursor;
    use std::time::Duration;
    use treesched_core::SchedulerRegistry;

    fn socket_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("treesched-{tag}-{}.sock", std::process::id()))
    }

    /// Connects with a short retry loop — the listener thread may still be
    /// binding when the client starts.
    fn connect_when_up(path: &Path, input: String, raw: bool) -> std::io::Result<Vec<u8>> {
        let mut last = None;
        for _ in 0..200 {
            let mut out = Vec::new();
            match connect_unix(path, Cursor::new(input.clone()), &mut out, raw) {
                Ok(()) => return Ok(out),
                Err(e) => last = Some(e),
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        Err(last.expect("at least one attempt"))
    }

    #[test]
    fn two_concurrent_socket_clients_share_the_daemon_without_loss() {
        let path = socket_path("pair");
        let daemon = Daemon::new(SchedulerRegistry::standard(), DaemonConfig::default());
        std::thread::scope(|scope| {
            let listener = scope.spawn(|| {
                listen_unix(
                    &daemon,
                    &path,
                    ListenOptions {
                        accept: Some(2),
                        ..ListenOptions::default()
                    },
                )
            });
            let clients: Vec<_> = ["sa", "sb"]
                .map(|tag| {
                    let path = path.clone();
                    scope.spawn(move || {
                        let input = stream(tag);
                        let out = connect_when_up(&path, input.clone(), false).expect("serves");
                        (input, out)
                    })
                })
                .into_iter()
                .collect();
            for client in clients {
                let (input, out) = client.join().unwrap();
                assert_eq!(
                    String::from_utf8(out).unwrap(),
                    batch_reference(&input),
                    "sorted socket stream is the batch stream"
                );
            }
            assert_eq!(listener.join().unwrap().expect("listener exits"), 2);
        });
        // both connections flowed through the one shared engine
        let stats = daemon.stats();
        assert_eq!(stats.requests, 2 * 12);
    }

    #[test]
    fn stop_drains_the_open_connection_and_returns() {
        use std::io::{BufRead as _, Write as _};
        let path = socket_path("stop");
        let daemon = Daemon::new(SchedulerRegistry::standard(), DaemonConfig::default());
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let listener = scope
                .spawn(|| listen_unix_stoppable(&daemon, &path, ListenOptions::default(), &stop));
            let mut conn = None;
            for _ in 0..200 {
                match UnixStream::connect(&path) {
                    Ok(s) => {
                        conn = Some(s);
                        break;
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
            let conn = conn.expect("listener came up");
            let mut write_half = conn.try_clone().unwrap();
            let input = stream("stop");
            for line in input.lines().take(3) {
                writeln!(write_half, "{line}").unwrap();
            }
            write_half.flush().unwrap();
            // collect the three answers; the write half stays open, so
            // only the stop latch can end this connection
            let mut reader = BufReader::new(conn);
            for _ in 0..3 {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                crate::frame::unframe(line.trim_end()).expect("framed response");
            }
            stop.store(true, Ordering::SeqCst);
            // drain broadcast: the daemon shuts the connection down and
            // the client sees EOF instead of hanging
            let mut tail = String::new();
            reader.read_line(&mut tail).unwrap();
            assert_eq!(tail, "", "write side closed after the drain");
            assert_eq!(listener.join().unwrap().expect("listener exits"), 1);
        });
        assert_eq!(daemon.stats().requests, 3, "all submitted lines served");
    }

    #[test]
    fn raw_mode_exposes_the_frames_and_reorders_to_the_same_bytes() {
        let path = socket_path("raw");
        let daemon = Daemon::new(SchedulerRegistry::standard(), DaemonConfig::default());
        std::thread::scope(|scope| {
            let listener = scope.spawn(|| {
                listen_unix(
                    &daemon,
                    &path,
                    ListenOptions {
                        accept: Some(1),
                        ..ListenOptions::default()
                    },
                )
            });
            let input = stream("raw");
            let out = connect_when_up(&path, input.clone(), true).expect("serves");
            let framed = String::from_utf8(out).unwrap();
            let mut seen: Vec<u64> = Vec::new();
            for line in framed.lines() {
                let (n, _) = crate::frame::unframe(line).expect("every line framed");
                seen.push(n);
            }
            seen.sort_unstable();
            let expected: Vec<u64> = (0..input.lines().count() as u64).collect();
            assert_eq!(seen, expected, "every submission answered exactly once");
            assert_eq!(
                crate::frame::reorder(framed.lines()).unwrap(),
                batch_reference(&input)
            );
            listener.join().unwrap().expect("listener exits");
        });
    }
}
