//! The stdio transport: the daemon's JSONL protocol framed over a pipe.
//!
//! `treesched serve --stdio` runs this loop over stdin/stdout: request
//! lines in, framed response records out in completion order. A parent
//! process holding both pipe ends gets a warm-cache scheduling service
//! for the cost of spawning one child.

use std::io::{BufRead, Write};

use crate::daemon::Daemon;
use crate::pump::pump;

/// Serves one request stream over a byte pipe: reads JSONL lines from
/// `input` until EOF and writes each framed response to `output` as it
/// completes. With `block`, a full in-flight budget blocks the read loop
/// (backpressure through the pipe); without it, excess lines are answered
/// immediately with typed `Overloaded` records.
///
/// Returns the number of responses delivered and the output handle.
pub fn serve_stdio<W: Write + Send + 'static>(
    daemon: &Daemon,
    input: impl BufRead,
    output: W,
    block: bool,
) -> std::io::Result<(u64, W)> {
    pump(daemon.client(), input, output, block)
}

/// As [`serve_stdio`], but drains gracefully when `stop` latches (a
/// SIGTERM flag from [`crate::signal::term_flag`], or any test-owned
/// atomic): no further lines are consumed past the next line boundary,
/// every line already submitted is answered and flushed, and the call
/// returns the delivered count. A reader blocked on an idle pipe is left
/// behind (it cannot be interrupted from safe code), which is why the
/// input must be `Send + 'static` here.
pub fn serve_stdio_stoppable(
    daemon: &Daemon,
    input: impl BufRead + Send + 'static,
    output: impl Write,
    block: bool,
    stop: &'static std::sync::atomic::AtomicBool,
) -> std::io::Result<u64> {
    crate::pump::pump_stoppable(daemon.client(), input, output, block, stop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::DaemonConfig;
    use crate::testutil::{batch_reference, stream};
    use treesched_core::SchedulerRegistry;

    #[test]
    fn stdio_stream_reordered_matches_the_batch_output() {
        let input = stream("stdio");
        let daemon = Daemon::new(SchedulerRegistry::standard(), DaemonConfig::default());
        let (delivered, out) =
            serve_stdio(&daemon, input.as_bytes(), Vec::new(), true).expect("pipe serves");
        assert_eq!(delivered, input.lines().count() as u64);
        let framed = String::from_utf8(out).unwrap();
        let got = crate::frame::reorder(framed.lines()).expect("every line framed");
        assert_eq!(got, batch_reference(&input));
    }

    #[test]
    fn stoppable_stdio_drains_submitted_lines_without_eof() {
        use std::io::Read;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::{mpsc, Arc, Mutex};
        use std::time::Duration;

        /// A pipe stand-in: yields `head`, then blocks (no EOF) until
        /// the test drops the gate sender — like an idle stdin.
        struct Held {
            head: std::io::Cursor<Vec<u8>>,
            gate: mpsc::Receiver<()>,
        }
        impl Read for Held {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let n = self.head.read(buf)?;
                if n > 0 {
                    return Ok(n);
                }
                let _ = self.gate.recv();
                Ok(0)
            }
        }

        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let input = stream("halt");
        let want = input.lines().count();
        let (keep_open, gate) = mpsc::channel::<()>();
        let held = Held {
            head: std::io::Cursor::new(input.clone().into_bytes()),
            gate,
        };
        let stop: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        let sink = Shared(Arc::new(Mutex::new(Vec::new())));
        let view = sink.clone();
        let served = std::thread::spawn(move || {
            let daemon = Daemon::new(SchedulerRegistry::standard(), DaemonConfig::default());
            serve_stdio_stoppable(&daemon, std::io::BufReader::new(held), sink, true, stop)
        });
        // wait until every line is answered, then latch stop: the input
        // never reaches EOF, so only the drain path can end the serve
        for _ in 0..500 {
            let newlines = view
                .0
                .lock()
                .unwrap()
                .iter()
                .filter(|&&b| b == b'\n')
                .count();
            if newlines >= want {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        stop.store(true, Ordering::SeqCst);
        let delivered = served.join().unwrap().expect("serve returns");
        assert_eq!(delivered, want as u64, "every submitted line answered");
        let framed = String::from_utf8(view.0.lock().unwrap().clone()).unwrap();
        assert_eq!(
            crate::frame::reorder(framed.lines()).unwrap(),
            batch_reference(&input)
        );
        drop(keep_open); // release the parked reader thread
    }

    #[test]
    fn stdio_blank_lines_and_eof_terminate_cleanly() {
        let daemon = Daemon::new(SchedulerRegistry::standard(), DaemonConfig::default());
        let (delivered, out) =
            serve_stdio(&daemon, "\n  \n".as_bytes(), Vec::new(), true).expect("serves");
        assert_eq!(delivered, 0);
        assert!(out.is_empty());
    }
}
