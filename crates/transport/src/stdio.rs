//! The stdio transport: the daemon's JSONL protocol framed over a pipe.
//!
//! `treesched serve --stdio` runs this loop over stdin/stdout: request
//! lines in, framed response records out in completion order. A parent
//! process holding both pipe ends gets a warm-cache scheduling service
//! for the cost of spawning one child.

use std::io::{BufRead, Write};

use crate::daemon::Daemon;
use crate::pump::pump;

/// Serves one request stream over a byte pipe: reads JSONL lines from
/// `input` until EOF and writes each framed response to `output` as it
/// completes. With `block`, a full in-flight budget blocks the read loop
/// (backpressure through the pipe); without it, excess lines are answered
/// immediately with typed `Overloaded` records.
///
/// Returns the number of responses delivered and the output handle.
pub fn serve_stdio<W: Write + Send + 'static>(
    daemon: &Daemon,
    input: impl BufRead,
    output: W,
    block: bool,
) -> std::io::Result<(u64, W)> {
    pump(daemon.client(), input, output, block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::DaemonConfig;
    use crate::testutil::{batch_reference, stream};
    use treesched_core::SchedulerRegistry;

    #[test]
    fn stdio_stream_reordered_matches_the_batch_output() {
        let input = stream("stdio");
        let daemon = Daemon::new(SchedulerRegistry::standard(), DaemonConfig::default());
        let (delivered, out) =
            serve_stdio(&daemon, input.as_bytes(), Vec::new(), true).expect("pipe serves");
        assert_eq!(delivered, input.lines().count() as u64);
        let framed = String::from_utf8(out).unwrap();
        let got = crate::frame::reorder(framed.lines()).expect("every line framed");
        assert_eq!(got, batch_reference(&input));
    }

    #[test]
    fn stdio_blank_lines_and_eof_terminate_cleanly() {
        let daemon = Daemon::new(SchedulerRegistry::standard(), DaemonConfig::default());
        let (delivered, out) =
            serve_stdio(&daemon, "\n  \n".as_bytes(), Vec::new(), true).expect("serves");
        assert_eq!(delivered, 0);
        assert!(out.is_empty());
    }
}
