//! Shared fixtures for the transport tests: on-disk trees, a mixed
//! request stream, and the batch reference every streamed transport must
//! reproduce byte-for-byte.

use treesched_core::SchedulerRegistry;
use treesched_model::{io as tree_io, TaskTree};
use treesched_serve::{result_json, ServeEngine};

use crate::proto::RequestParser;

/// Writes the fixture trees once per process and returns their paths.
/// Writes go through a rename so a concurrent test process never reads a
/// half-written file.
pub(crate) fn fixtures() -> (String, String) {
    static PATHS: std::sync::OnceLock<(String, String)> = std::sync::OnceLock::new();
    PATHS
        .get_or_init(|| {
            let dir = std::env::temp_dir().join("treesched-transport-fixtures");
            std::fs::create_dir_all(&dir).unwrap();
            let place = |name: &str, tree: &TaskTree| {
                let tmp = dir.join(format!("{name}.{}.tmp", std::process::id()));
                let path = dir.join(name);
                std::fs::write(&tmp, tree_io::to_text(tree)).unwrap();
                std::fs::rename(&tmp, &path).unwrap();
                path.to_string_lossy().into_owned()
            };
            (
                place("fork.tree", &TaskTree::fork(6, 1.0, 1.0, 0.0)),
                place("chain.tree", &TaskTree::chain(9, 2.0, 1.0, 0.5)),
            )
        })
        .clone()
}

/// A 12-line mixed request stream over both fixture trees.
pub(crate) fn stream(tag: &str) -> String {
    let (fork, chain) = fixtures();
    let mut input = String::new();
    for round in 0..3 {
        for (t, tree) in [&fork, &chain].iter().enumerate() {
            for (s, scheduler) in ["deepest", "subtrees"].iter().enumerate() {
                input.push_str(&format!(
                    "{{\"id\":\"{tag}.{round}.{t}.{s}\",\"tree\":\"{tree}\",\
                     \"processors\":{},\"scheduler\":\"{scheduler}\"}}\n",
                    2 + round
                ));
            }
        }
    }
    input
}

/// The batch reference: the same lines through one parser + engine
/// directly, results rendered in submission order — exactly what the
/// one-shot `serve` front-end produces.
pub(crate) fn batch_reference(input: &str) -> String {
    let mut parser = RequestParser::new(None);
    let mut engine = ServeEngine::new(SchedulerRegistry::standard(), 2);
    let mut slots: Vec<Option<String>> = Vec::new();
    let mut submitted = Vec::new();
    for (k, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let slot = slots.len();
        slots.push(None);
        match parser.build(k + 1, line) {
            Ok(request) => {
                engine.submit(request);
                submitted.push(slot);
            }
            Err(record) => slots[slot] = Some(record),
        }
    }
    for (k, result) in engine.drain().iter().enumerate() {
        slots[submitted[k]] = Some(result_json(result));
    }
    slots.into_iter().map(|s| s.expect("filled")).collect()
}
