//! Typed parse errors with 1-based source positions.
//!
//! Every ingest failure in this crate — Newick syntax, attribute problems,
//! MatrixMarket structure — is one of these variants, carrying the exact
//! 1-based line (and, where a column makes sense, column) of the offending
//! input. The `Display` wording is part of the toolbox's user contract:
//! the malformed-input tests pin it the same way the transport crate pins
//! its malformed-record wording.

use treesched_model::TreeError;

/// A failure while parsing an external tree format.
#[derive(Clone, Debug, PartialEq)]
pub enum TreeParseError {
    /// The scanner met something other than what the grammar allows.
    Syntax {
        /// 1-based line of the offending character.
        line: usize,
        /// 1-based column of the offending character.
        col: usize,
        /// What the grammar allowed here.
        expected: &'static str,
        /// What was found instead (a short excerpt, or `end of input`).
        found: String,
    },
    /// A numeric token failed to parse.
    Number {
        /// 1-based line of the token.
        line: usize,
        /// 1-based column of the token.
        col: usize,
        /// What the number was for (`work`, `branch length`, ...).
        what: String,
    },
    /// An attribute key other than `work`/`output`/`exec`.
    UnknownAttribute {
        /// 1-based line of the key.
        line: usize,
        /// 1-based column of the key.
        col: usize,
        /// The offending key.
        name: String,
    },
    /// The same attribute given twice on one node (a branch length counts
    /// as `output`).
    DuplicateAttribute {
        /// 1-based line of the second occurrence.
        line: usize,
        /// 1-based column of the second occurrence.
        col: usize,
        /// The attribute name.
        name: &'static str,
    },
    /// All node labels are numeric (so they are taken as explicit node
    /// ids) but they do not form a dense, duplicate-free `0..n`.
    LabelId {
        /// 1-based line of the offending label.
        line: usize,
        /// 1-based column of the offending label.
        col: usize,
        /// What is wrong with the id.
        detail: String,
    },
    /// A malformed MatrixMarket header or size line.
    Header {
        /// 1-based line of the header.
        line: usize,
        /// What is wrong with it.
        detail: String,
    },
    /// A malformed MatrixMarket coordinate entry.
    Entry {
        /// 1-based line of the entry.
        line: usize,
        /// What is wrong with it.
        detail: String,
    },
    /// A malformed `treesched tree v1` line, re-typed from the model
    /// crate's own parser with its wording intact.
    V1 {
        /// 1-based line of the bad entry.
        line: usize,
        /// What is wrong with it, in the v1 parser's words.
        detail: String,
    },
    /// Input with no tree in it.
    Empty,
    /// Text after the closing `;` of a Newick tree.
    Trailing {
        /// 1-based line of the first trailing character.
        line: usize,
        /// 1-based column of the first trailing character.
        col: usize,
    },
    /// The parsed structure is not a tree (cycle, several roots, ...).
    Tree(TreeError),
}

impl std::fmt::Display for TreeParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeParseError::Syntax {
                line,
                col,
                expected,
                found,
            } => {
                write!(
                    f,
                    "line {line}, col {col}: expected {expected}, found {found}"
                )
            }
            TreeParseError::Number { line, col, what } => {
                write!(f, "line {line}, col {col}: cannot parse {what} as a number")
            }
            TreeParseError::UnknownAttribute { line, col, name } => {
                write!(
                    f,
                    "line {line}, col {col}: unknown attribute `{name}` \
                     (expected work, output or exec)"
                )
            }
            TreeParseError::DuplicateAttribute { line, col, name } => {
                write!(
                    f,
                    "line {line}, col {col}: duplicate `{name}` for this node"
                )
            }
            TreeParseError::LabelId { line, col, detail } => {
                write!(f, "line {line}, col {col}: bad node id label: {detail}")
            }
            TreeParseError::Header { line, detail } => {
                write!(f, "line {line}: bad MatrixMarket header: {detail}")
            }
            TreeParseError::Entry { line, detail } => {
                write!(f, "line {line}: bad MatrixMarket entry: {detail}")
            }
            TreeParseError::V1 { line, detail } => write!(f, "line {line}: {detail}"),
            TreeParseError::Empty => write!(f, "input holds no tree"),
            TreeParseError::Trailing { line, col } => {
                write!(f, "line {line}, col {col}: trailing text after the tree")
            }
            TreeParseError::Tree(e) => write!(f, "invalid tree: {e}"),
        }
    }
}

impl std::error::Error for TreeParseError {}

impl From<TreeError> for TreeParseError {
    fn from(e: TreeError) -> Self {
        TreeParseError::Tree(e)
    }
}

/// A failure while loading a tree file: I/O or parse, with the path
/// attached. `Display` reuses the CLI's `cannot read`/`cannot parse`
/// wording so error records look the same whichever layer raised them.
#[derive(Clone, Debug, PartialEq)]
pub enum LoadError {
    /// The file could not be read.
    Io {
        /// The offending path.
        path: String,
        /// The underlying I/O error text.
        cause: String,
    },
    /// The file content failed to parse.
    Parse {
        /// The offending path.
        path: String,
        /// The typed parse failure. `treesched tree v1` files keep their
        /// own error type and are re-rendered here.
        cause: String,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io { path, cause } => write!(f, "cannot read {path}: {cause}"),
            LoadError::Parse { path, cause } => write!(f, "cannot parse {path}: {cause}"),
        }
    }
}

impl std::error::Error for LoadError {}
