//! Tree workload toolbox: external formats in, schedulable trees out.
//!
//! Every tree the workspace scheduled before this crate existed was
//! synthetic. This crate is the ingest/transform/export layer that turns
//! user-supplied workload files into [`TaskTree`]s — and back:
//!
//! * **In** — an attributed Newick dialect ([`newick`]: `work`/`output`/
//!   `exec` as `[&...]` node attributes, branch lengths as output sizes),
//!   MatrixMarket coordinate patterns routed through the sparse
//!   elimination/assembly-tree pipeline ([`mm`]), and the native
//!   `treesched tree v1` text format.
//! * **Transform** — prune subtrees, extract a subtree, reroot ([`ops`]).
//! * **Out** — Newick ([`newick::to_newick`]), v1 text, and serve-wire
//!   request JSONL ([`requests`]) that the serving engine accepts
//!   verbatim.
//!
//! All parse failures are typed [`TreeParseError`]s carrying 1-based
//! line/column positions with pinned `Display` wording, mirroring how the
//! transport layer pins its malformed-record handling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod mm;
pub mod newick;
pub mod ops;
pub mod requests;

pub use error::{LoadError, TreeParseError};
pub use mm::{from_matrix_market, parse_pattern, IngestOptions, OrderingKind};
pub use newick::{from_newick, to_newick};
pub use ops::{prune, reroot, subtree, OpError};
pub use requests::{to_requests, RequestOptions};

use treesched_model::TaskTree;

/// An on-disk tree format the toolbox can read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// The native `treesched tree v1` text format.
    V1,
    /// The attributed Newick dialect (see [`newick`]).
    Newick,
    /// A MatrixMarket coordinate pattern (see [`mm`]).
    MatrixMarket,
}

impl Format {
    /// Parses a CLI spelling: `v1`, `newick`/`nwk`, `mm`/`mtx`.
    pub fn parse(s: &str) -> Option<Format> {
        match s {
            "v1" | "tree" => Some(Format::V1),
            "newick" | "nwk" => Some(Format::Newick),
            "mm" | "mtx" | "matrixmarket" => Some(Format::MatrixMarket),
            _ => None,
        }
    }

    /// The canonical spelling, inverse of [`Format::parse`].
    pub fn name(self) -> &'static str {
        match self {
            Format::V1 => "v1",
            Format::Newick => "newick",
            Format::MatrixMarket => "mm",
        }
    }

    /// Guesses the format of `path` from its extension alone.
    pub fn from_extension(path: &str) -> Option<Format> {
        let ext = std::path::Path::new(path).extension()?.to_str()?;
        match ext.to_ascii_lowercase().as_str() {
            "tree" | "v1" => Some(Format::V1),
            "nwk" | "newick" | "nh" => Some(Format::Newick),
            "mtx" | "mm" => Some(Format::MatrixMarket),
            _ => None,
        }
    }

    /// Guesses the format from file content: `%%MatrixMarket` ⇒
    /// MatrixMarket, a leading `(` ⇒ Newick, else v1 (whose own parser
    /// rejects anything without the v1 header).
    pub fn sniff(text: &str) -> Format {
        if text.starts_with("%%MatrixMarket") {
            Format::MatrixMarket
        } else if matches!(text.trim_start().chars().next(), Some('(')) {
            Format::Newick
        } else {
            Format::V1
        }
    }

    /// Extension first, content sniff as the fallback.
    pub fn detect(path: &str, text: &str) -> Format {
        Format::from_extension(path).unwrap_or_else(|| Format::sniff(text))
    }
}

/// Parses `text` as `format`. MatrixMarket input goes through the default
/// [`IngestOptions`] — use [`parse_as_with`] to choose an ordering or
/// amalgamation limit.
pub fn parse_as(text: &str, format: Format) -> Result<TaskTree, TreeParseError> {
    parse_as_with(text, format, IngestOptions::default())
}

/// As [`parse_as`], with explicit MatrixMarket ingest options (ignored by
/// the other formats).
pub fn parse_as_with(
    text: &str,
    format: Format,
    opts: IngestOptions,
) -> Result<TaskTree, TreeParseError> {
    match format {
        Format::V1 => treesched_model::io::from_text(text).map_err(|e| {
            use treesched_model::io::ParseError as P;
            match e {
                P::Tree(t) => TreeParseError::Tree(t),
                P::BadLine { line } => TreeParseError::V1 {
                    line,
                    detail: "expected 5 fields".into(),
                },
                P::BadNumber { line, field } => TreeParseError::V1 {
                    line,
                    detail: format!("cannot parse {field}"),
                },
                P::NonDenseIds {
                    line,
                    expected,
                    got,
                } => TreeParseError::V1 {
                    line,
                    detail: format!("expected id {expected}, got {got}"),
                },
            }
        }),
        Format::Newick => from_newick(text),
        Format::MatrixMarket => from_matrix_market(text, opts),
    }
}

/// Reads and parses a tree file, detecting the format from the path and
/// content ([`Format::detect`]). Failures carry the path, CLI-style.
pub fn load(path: &str, opts: IngestOptions) -> Result<(TaskTree, Format), LoadError> {
    let text = std::fs::read_to_string(path).map_err(|e| LoadError::Io {
        path: path.to_string(),
        cause: e.to_string(),
    })?;
    let format = Format::detect(path, &text);
    let tree = parse_as_with(&text, format, opts).map_err(|e| LoadError::Parse {
        path: path.to_string(),
        cause: e.to_string(),
    })?;
    Ok((tree, format))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_prefers_extension() {
        assert_eq!(Format::from_extension("a/b.nwk"), Some(Format::Newick));
        assert_eq!(
            Format::from_extension("a/b.MTX"),
            Some(Format::MatrixMarket)
        );
        assert_eq!(Format::from_extension("a/b.tree"), Some(Format::V1));
        assert_eq!(Format::from_extension("a/b.txt"), None);
        assert_eq!(Format::sniff("%%MatrixMarket matrix"), Format::MatrixMarket);
        assert_eq!(Format::sniff("  (a,b);"), Format::Newick);
        assert_eq!(Format::sniff("# treesched tree v1"), Format::V1);
        assert_eq!(Format::detect("x.txt", "(a);"), Format::Newick);
        assert_eq!(Format::detect("x.nwk", "# nope"), Format::Newick);
    }

    #[test]
    fn v1_errors_keep_their_line() {
        let e = parse_as("# treesched tree v1\n0 -1 1 1\n", Format::V1).unwrap_err();
        assert_eq!(
            e,
            TreeParseError::V1 {
                line: 2,
                detail: "expected 5 fields".into()
            }
        );
        assert_eq!(e.to_string(), "line 2: expected 5 fields");
    }

    #[test]
    fn round_trip_across_formats() {
        let t = treesched_model::TaskTree::fork(3, 2.0, 1.5, 0.5);
        let nwk = to_newick(&t);
        let back = parse_as(&nwk, Format::Newick).unwrap();
        assert_eq!(t, back);
        let v1 = treesched_model::io::to_text(&t);
        let back = parse_as(&v1, Format::V1).unwrap();
        assert_eq!(t, back);
    }
}
