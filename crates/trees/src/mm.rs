//! MatrixMarket coordinate ingest → assembly/elimination task trees.
//!
//! Accepts the coordinate subset of the MatrixMarket exchange format —
//! `%%MatrixMarket matrix coordinate pattern|real|integer
//! symmetric|general` — for square matrices. Only the nonzero *structure*
//! matters for an elimination tree, so `real`/`integer` values are parsed
//! and discarded, and `general` structures are symmetrized (the pattern of
//! `A + Aᵀ`), exactly what direct solvers do before symbolic analysis.
//!
//! The structure is routed through `treesched_sparse`: fill-reducing
//! ordering → permuted pattern → elimination tree → column counts →
//! relaxed amalgamation into an assembly tree with the paper's frontal
//! weights. `amalg = 1` means no amalgamation — every column is its own
//! task, i.e. the plain elimination tree.

use crate::error::TreeParseError;
use treesched_model::TaskTree;
use treesched_sparse::ordering::{min_degree, reverse_cuthill_mckee};
use treesched_sparse::{assembly_tree_ordered, Ordering, SparsePattern};

/// Fill-reducing ordering applied before the elimination tree is built.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OrderingKind {
    /// Keep the file's column order.
    Natural,
    /// Approximate minimum degree (the paper's evaluation setup).
    #[default]
    MinDegree,
    /// Reverse Cuthill–McKee.
    Rcm,
}

impl OrderingKind {
    /// Parses a CLI/spec spelling: `natural`, `amd`/`mindeg`, `rcm`.
    pub fn parse(s: &str) -> Option<OrderingKind> {
        match s {
            "natural" => Some(OrderingKind::Natural),
            "amd" | "mindeg" | "min-degree" => Some(OrderingKind::MinDegree),
            "rcm" => Some(OrderingKind::Rcm),
            _ => None,
        }
    }

    /// The canonical spelling, inverse of [`OrderingKind::parse`].
    pub fn name(self) -> &'static str {
        match self {
            OrderingKind::Natural => "natural",
            OrderingKind::MinDegree => "amd",
            OrderingKind::Rcm => "rcm",
        }
    }

    fn ordering(self, p: &SparsePattern) -> Ordering {
        match self {
            OrderingKind::Natural => Ordering::natural(p.n()),
            OrderingKind::MinDegree => min_degree(p),
            OrderingKind::Rcm => reverse_cuthill_mckee(p),
        }
    }
}

/// How a MatrixMarket pattern becomes a task tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestOptions {
    /// Fill-reducing ordering (default AMD, like the paper).
    pub ordering: OrderingKind,
    /// Relaxed-amalgamation limit; `1` keeps the bare elimination tree.
    pub amalg: u32,
}

impl Default for IngestOptions {
    fn default() -> IngestOptions {
        IngestOptions {
            ordering: OrderingKind::default(),
            amalg: 1,
        }
    }
}

/// Parses MatrixMarket coordinate text into the symmetrized off-diagonal
/// structure. Returns the dimension and the edge list (0-based, `i != j`).
pub fn parse_pattern(text: &str) -> Result<SparsePattern, TreeParseError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(TreeParseError::Empty)?;
    let header_err = |detail: String| TreeParseError::Header { line: 1, detail };
    let mut words = header.split_whitespace();
    if words.next() != Some("%%MatrixMarket") {
        return Err(header_err(
            "first line must start with `%%MatrixMarket`".into(),
        ));
    }
    let object = words.next().unwrap_or("").to_ascii_lowercase();
    let format = words.next().unwrap_or("").to_ascii_lowercase();
    let field = words.next().unwrap_or("").to_ascii_lowercase();
    let symmetry = words.next().unwrap_or("").to_ascii_lowercase();
    if object != "matrix" || format != "coordinate" {
        return Err(header_err(format!(
            "only `matrix coordinate` is supported, got `{object} {format}`"
        )));
    }
    let has_value = match field.as_str() {
        "pattern" => false,
        "real" | "integer" => true,
        other => {
            return Err(header_err(format!(
                "unsupported field `{other}` (expected pattern, real or integer)"
            )))
        }
    };
    match symmetry.as_str() {
        "symmetric" | "general" => {}
        other => {
            return Err(header_err(format!(
                "unsupported symmetry `{other}` (expected symmetric or general)"
            )))
        }
    }

    // size line: first non-comment, non-blank line after the header
    let mut size: Option<(usize, usize, usize, usize)> = None;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut seen = 0usize;
    for (idx, raw) in lines {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let mut fields = line.split_whitespace();
        match size {
            None => {
                let mut dim = |what: &str| -> Result<usize, TreeParseError> {
                    fields.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
                        TreeParseError::Header {
                            line: line_no,
                            detail: format!("size line must read `rows cols nnz`, bad {what}"),
                        }
                    })
                };
                let (m, n, nnz) = (dim("rows")?, dim("cols")?, dim("nnz")?);
                if fields.next().is_some() {
                    return Err(TreeParseError::Header {
                        line: line_no,
                        detail: "size line must read `rows cols nnz`, got extra fields".into(),
                    });
                }
                if m != n {
                    return Err(TreeParseError::Header {
                        line: line_no,
                        detail: format!("matrix must be square, got {m}x{n}"),
                    });
                }
                if n == 0 {
                    return Err(TreeParseError::Header {
                        line: line_no,
                        detail: "matrix must be non-empty, got 0x0".into(),
                    });
                }
                size = Some((m, n, nnz, line_no));
                edges.reserve(nnz);
            }
            Some((_, n, nnz, _)) => {
                seen += 1;
                if seen > nnz {
                    return Err(TreeParseError::Entry {
                        line: line_no,
                        detail: format!("more than the declared {nnz} entries"),
                    });
                }
                let mut coord = |what: &str| -> Result<usize, TreeParseError> {
                    fields.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
                        TreeParseError::Entry {
                            line: line_no,
                            detail: format!("bad {what} index"),
                        }
                    })
                };
                let (i, j) = (coord("row")?, coord("column")?);
                if has_value && fields.next().is_none() {
                    return Err(TreeParseError::Entry {
                        line: line_no,
                        detail: "missing value field".into(),
                    });
                }
                if fields.next().is_some() {
                    return Err(TreeParseError::Entry {
                        line: line_no,
                        detail: "extra fields after the entry".into(),
                    });
                }
                if i < 1 || i > n || j < 1 || j > n {
                    return Err(TreeParseError::Entry {
                        line: line_no,
                        detail: format!("index ({i}, {j}) outside a {n}x{n} matrix"),
                    });
                }
                if i != j {
                    edges.push((i as u32 - 1, j as u32 - 1));
                }
            }
        }
    }
    let Some((_, n, nnz, size_line)) = size else {
        return Err(TreeParseError::Header {
            line: 1,
            detail: "missing size line".into(),
        });
    };
    if seen != nnz {
        return Err(TreeParseError::Entry {
            line: size_line,
            detail: format!("declared {nnz} entries, found {seen}"),
        });
    }
    // from_edges symmetrizes and dedups; indices were range-checked above
    Ok(SparsePattern::from_edges(n, &edges))
}

/// Parses MatrixMarket text and builds the assembly (or, at `amalg = 1`,
/// elimination) task tree under the requested ordering.
///
/// A disconnected structure has one elimination tree per component — a
/// forest, not a tree — and surfaces as a typed
/// [`TreeParseError::Tree`]`(`[`TreeError::MultipleRoots`]`)`.
///
/// [`TreeError::MultipleRoots`]: treesched_model::TreeError::MultipleRoots
pub fn from_matrix_market(text: &str, opts: IngestOptions) -> Result<TaskTree, TreeParseError> {
    let pattern = parse_pattern(text)?;
    let ordering = opts.ordering.ordering(&pattern);
    Ok(assembly_tree_ordered(
        &pattern,
        &ordering,
        opts.amalg.max(1),
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesched_model::{TreeError, ValidateExt};

    const TRI5: &str = "%%MatrixMarket matrix coordinate pattern symmetric\n\
        % 5x5 tridiagonal\n\
        5 5 9\n\
        1 1\n2 2\n3 3\n4 4\n5 5\n\
        2 1\n3 2\n4 3\n5 4\n";

    #[test]
    fn tridiagonal_elimination_tree_is_a_chain() {
        let t = from_matrix_market(
            TRI5,
            IngestOptions {
                ordering: OrderingKind::Natural,
                amalg: 1,
            },
        )
        .unwrap();
        assert_eq!(t.len(), 5);
        t.validate().unwrap();
        // natural order on a tridiagonal: parent(j) = j + 1, a pure chain
        assert_eq!(t.children(t.root()).len(), 1);
        assert_eq!(t.leaves().len(), 1);
    }

    #[test]
    fn general_real_values_are_ignored() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
            3 3 5\n\
            1 1 4.0\n2 2 4.0\n3 3 4.0\n1 2 -1.5\n3 2 -2.5\n";
        let t = from_matrix_market(text, IngestOptions::default()).unwrap();
        assert_eq!(t.len(), 3);
        t.validate().unwrap();
    }

    #[test]
    fn orderings_change_the_tree_shape() {
        // arrow matrix: hub row 1 connected to everyone
        let mut text = String::from("%%MatrixMarket matrix coordinate pattern symmetric\n7 7 13\n");
        for i in 1..=7 {
            text.push_str(&format!("{i} {i}\n"));
        }
        for i in 2..=7 {
            text.push_str(&format!("{i} 1\n"));
        }
        let natural = from_matrix_market(
            &text,
            IngestOptions {
                ordering: OrderingKind::Natural,
                amalg: 1,
            },
        )
        .unwrap();
        let amd = from_matrix_market(&text, IngestOptions::default()).unwrap();
        // eliminating the hub first fills everything in: a chain; AMD
        // keeps the hub for (nearly) last: mostly a star
        assert_eq!(natural.leaves().len(), 1);
        assert!(amd.leaves().len() >= 5, "got {}", amd.leaves().len());
    }

    #[test]
    fn header_errors_are_typed() {
        let e = parse_pattern("%%MatrixMarket matrix array real general\n2 2\n").unwrap_err();
        assert_eq!(
            e.to_string(),
            "line 1: bad MatrixMarket header: only `matrix coordinate` is supported, \
             got `matrix array`"
        );
        let e = parse_pattern("%%MatrixMarket matrix coordinate complex symmetric\n").unwrap_err();
        assert!(e.to_string().contains("unsupported field `complex`"));
        let e = parse_pattern("%%MatrixMarket matrix coordinate pattern symmetric\n2 3 1\n1 1\n")
            .unwrap_err();
        assert_eq!(
            e,
            TreeParseError::Header {
                line: 2,
                detail: "matrix must be square, got 2x3".into()
            }
        );
    }

    #[test]
    fn entry_errors_are_typed() {
        let base = "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n";
        let e = parse_pattern(&format!("{base}1 1\n4 1\n")).unwrap_err();
        assert_eq!(
            e,
            TreeParseError::Entry {
                line: 4,
                detail: "index (4, 1) outside a 3x3 matrix".into()
            }
        );
        let e = parse_pattern(&format!("{base}1 1\n")).unwrap_err();
        assert_eq!(
            e,
            TreeParseError::Entry {
                line: 2,
                detail: "declared 2 entries, found 1".into()
            }
        );
        let e = parse_pattern(&format!("{base}1 1\n2 1\n3 1\n")).unwrap_err();
        assert!(e.to_string().contains("more than the declared 2 entries"));
    }

    #[test]
    fn disconnected_structure_is_a_typed_forest_error() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
            4 4 5\n1 1\n2 2\n3 3\n4 4\n2 1\n";
        let e = from_matrix_market(text, IngestOptions::default()).unwrap_err();
        assert_eq!(e, TreeParseError::Tree(TreeError::MultipleRoots));
    }
}
