//! An attributed Newick dialect for task trees.
//!
//! Standard Newick spells the topology — `(child,child)node;` — and this
//! dialect carries the paper's three per-task weights as node attributes
//! in a bracket block after the (optional) label:
//!
//! ```text
//! (leaf[&work=1,output=2,exec=0],(a,b)inner[&work=3])root[&work=1];
//! ```
//!
//! * `work` — processing time `w_i` (default 1);
//! * `output` — output-file size `f_i` (default 1);
//! * `exec` — execution-file size `n_i` (default 0).
//!
//! A classic branch length `:x` is accepted as a synonym for `output=x`
//! (the edge to the parent carries the output file), so plain phylogenetic
//! Newick ingests directly with pebble-ish weights. Spelling both a branch
//! length and an `output` attribute on one node is a typed
//! [`TreeParseError::DuplicateAttribute`].
//!
//! **Node ids.** When *every* node carries a purely numeric label, the
//! labels are taken as explicit node ids and must form a duplicate-free
//! `0..n` (a typed [`TreeParseError::LabelId`] otherwise) — this is what
//! makes [`to_newick`] → [`from_newick`] restore a tree bit-for-bit, ids
//! included. Otherwise labels are decorative and ids are assigned in
//! preorder (a node is numbered when its text begins, so a parent precedes
//! its children and siblings number left to right).
//!
//! As everywhere in the workspace, children end up ordered by ascending
//! node id (the `from_parents` convention shared with the v1 text format);
//! Newick document order does not survive an id-relabeling round trip.

use crate::error::TreeParseError;
use treesched_model::TaskTree;

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Serializes a tree into the attributed Newick dialect.
///
/// Every node is written as `id[&work=W,output=F,exec=N]` with the arena
/// id as its label and all three weights spelled explicitly (Rust `f64`
/// `Display` round-trips exactly), so [`from_newick`] restores the tree
/// bit-for-bit — ids, weights, and (by the ascending-id convention) child
/// order.
pub fn to_newick(tree: &TaskTree) -> String {
    enum Step {
        Visit(treesched_model::NodeId),
        Close(treesched_model::NodeId),
        Comma,
    }
    let mut out = String::with_capacity(tree.len() * 32 + 8);
    let suffix = |out: &mut String, i: treesched_model::NodeId| {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{}[&work={},output={},exec={}]",
            i.index(),
            tree.work(i),
            tree.output(i),
            tree.exec(i)
        );
    };
    let mut stack = vec![Step::Visit(tree.root())];
    while let Some(step) = stack.pop() {
        match step {
            Step::Comma => out.push(','),
            Step::Close(i) => {
                out.push(')');
                suffix(&mut out, i);
            }
            Step::Visit(i) => {
                let children = tree.children(i);
                if children.is_empty() {
                    suffix(&mut out, i);
                } else {
                    out.push('(');
                    stack.push(Step::Close(i));
                    // children in tree order, comma-separated: push in
                    // reverse so the leftmost pops first
                    for (k, &c) in children.iter().enumerate().rev() {
                        if k + 1 < children.len() {
                            stack.push(Step::Comma);
                        }
                        stack.push(Step::Visit(c));
                    }
                }
            }
        }
    }
    out.push_str(";\n");
    out
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// One node under construction.
struct PNode {
    parent: Option<usize>,
    label: Option<String>,
    /// Position of the label, for id-relabeling errors.
    label_pos: (usize, usize),
    work: Option<f64>,
    output: Option<f64>,
    exec: Option<f64>,
}

impl PNode {
    fn new() -> PNode {
        PNode {
            parent: None,
            label: None,
            label_pos: (0, 0),
            work: None,
            output: None,
            exec: None,
        }
    }
}

/// Character scanner with 1-based line/column tracking.
struct Scanner<'a> {
    rest: std::str::Chars<'a>,
    peeked: Option<char>,
    line: usize,
    col: usize,
}

impl<'a> Scanner<'a> {
    fn new(text: &'a str) -> Scanner<'a> {
        Scanner {
            rest: text.chars(),
            peeked: None,
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        if self.peeked.is_none() {
            self.peeked = self.rest.next();
        }
        self.peeked
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        self.peeked = None;
        match c {
            Some('\n') => {
                self.line += 1;
                self.col = 1;
            }
            Some(_) => self.col += 1,
            None => {}
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    /// Position of the *next* character (the one `peek` returns).
    fn pos(&self) -> (usize, usize) {
        (self.line, self.col)
    }

    fn found(&mut self) -> String {
        match self.peek() {
            Some(c) if c.is_control() => format!("`{}`", c.escape_default()),
            Some(c) => format!("`{c}`"),
            None => "end of input".to_string(),
        }
    }

    fn syntax(&mut self, expected: &'static str) -> TreeParseError {
        let (line, col) = self.pos();
        TreeParseError::Syntax {
            line,
            col,
            expected,
            found: self.found(),
        }
    }

    /// Reads a numeric token (sign, digits, `.`, exponent) and parses it.
    fn number(&mut self, what: &str) -> Result<f64, TreeParseError> {
        let (line, col) = self.pos();
        let mut tok = String::new();
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, '+' | '-' | '.' | 'e' | 'E')
        ) {
            tok.push(self.bump().expect("peeked"));
        }
        tok.parse().map_err(|_| TreeParseError::Number {
            line,
            col,
            what: what.to_string(),
        })
    }
}

/// `true` for characters that may appear in an unquoted label.
fn is_label_char(c: char) -> bool {
    !c.is_whitespace() && !matches!(c, '(' | ')' | ',' | ';' | ':' | '[' | ']' | '\'')
}

/// Parses one attributed Newick tree (see the [module docs](self) for the
/// dialect). Exactly one tree per input; anything but whitespace after the
/// closing `;` is a typed [`TreeParseError::Trailing`].
pub fn from_newick(text: &str) -> Result<TaskTree, TreeParseError> {
    let mut s = Scanner::new(text);
    let mut nodes: Vec<PNode> = Vec::new();
    // open internal nodes (their `(` seen, their `)` not yet)
    let mut open: Vec<usize> = Vec::new();
    s.skip_ws();
    if s.peek().is_none() {
        return Err(TreeParseError::Empty);
    }
    loop {
        // parse one subtree start: either an internal node opens, or a
        // leaf's suffix begins right here
        s.skip_ws();
        let id = nodes.len();
        nodes.push(PNode::new());
        if let Some(&parent) = open.last() {
            nodes[id].parent = Some(parent);
        }
        if s.peek() == Some('(') {
            s.bump();
            open.push(id);
            continue; // descend into the first child
        }
        node_suffix(&mut s, &mut nodes[id])?;
        // `id` is now a finished node; close as many parents as the input
        // does, then either continue with a sibling or finish
        let mut done = id;
        loop {
            s.skip_ws();
            match s.peek() {
                Some(',') => {
                    if open.is_empty() {
                        return Err(s.syntax("`;` (a comma outside any `(`)"));
                    }
                    s.bump();
                    break; // next sibling subtree
                }
                Some(')') => {
                    let Some(closing) = open.pop() else {
                        return Err(s.syntax("`;` (a `)` without a matching `(`)"));
                    };
                    s.bump();
                    node_suffix(&mut s, &mut nodes[closing])?;
                    done = closing;
                }
                Some(';') => {
                    if !open.is_empty() {
                        return Err(s.syntax("`)` (unclosed `(`)"));
                    }
                    s.bump();
                    s.skip_ws();
                    if s.peek().is_some() {
                        let (line, col) = s.pos();
                        return Err(TreeParseError::Trailing { line, col });
                    }
                    return build(nodes, done);
                }
                _ => return Err(s.syntax("`,`, `)` or `;`")),
            }
        }
    }
}

/// Parses the suffix of a node: optional label, optional `[&k=v,...]`
/// attribute block, optional `:length` branch length.
fn node_suffix(s: &mut Scanner<'_>, node: &mut PNode) -> Result<(), TreeParseError> {
    // whitespace is insignificant outside quoted labels
    s.skip_ws();
    // label — unquoted, or quoted with '' escaping
    let pos = s.pos();
    if s.peek() == Some('\'') {
        s.bump();
        let mut label = String::new();
        loop {
            match s.bump() {
                Some('\'') => {
                    if s.peek() == Some('\'') {
                        s.bump();
                        label.push('\'');
                    } else {
                        break;
                    }
                }
                Some(c) => label.push(c),
                None => return Err(s.syntax("closing `'`")),
            }
        }
        node.label = Some(label);
        node.label_pos = pos;
    } else if matches!(s.peek(), Some(c) if is_label_char(c)) {
        let mut label = String::new();
        while matches!(s.peek(), Some(c) if is_label_char(c)) {
            label.push(s.bump().expect("peeked"));
        }
        node.label = Some(label);
        node.label_pos = pos;
    }
    // attribute block
    s.skip_ws();
    if s.peek() == Some('[') {
        s.bump();
        if s.peek() == Some('&') {
            s.bump();
        } else {
            return Err(s.syntax("`&` (attribute blocks are `[&key=value,...]`)"));
        }
        loop {
            let key_pos = s.pos();
            let mut key = String::new();
            while matches!(s.peek(), Some(c) if c.is_ascii_alphabetic() || c == '_') {
                key.push(s.bump().expect("peeked"));
            }
            if s.peek() != Some('=') {
                return Err(s.syntax("`=` after the attribute key"));
            }
            s.bump();
            let value = s.number(&key)?;
            let slot = match key.as_str() {
                "work" => &mut node.work,
                "output" => &mut node.output,
                "exec" => &mut node.exec,
                _ => {
                    return Err(TreeParseError::UnknownAttribute {
                        line: key_pos.0,
                        col: key_pos.1,
                        name: key,
                    })
                }
            };
            if slot.is_some() {
                return Err(TreeParseError::DuplicateAttribute {
                    line: key_pos.0,
                    col: key_pos.1,
                    name: match key.as_str() {
                        "work" => "work",
                        "output" => "output",
                        _ => "exec",
                    },
                });
            }
            *slot = Some(value);
            match s.peek() {
                Some(',') => {
                    s.bump();
                }
                Some(']') => {
                    s.bump();
                    break;
                }
                _ => return Err(s.syntax("`,` or `]` in the attribute block")),
            }
        }
    }
    // branch length = output
    s.skip_ws();
    if s.peek() == Some(':') {
        let pos = s.pos();
        s.bump();
        let value = s.number("branch length")?;
        if node.output.is_some() {
            return Err(TreeParseError::DuplicateAttribute {
                line: pos.0,
                col: pos.1,
                name: "output",
            });
        }
        node.output = Some(value);
    }
    Ok(())
}

/// Resolves ids (numeric dense labels, else preorder) and packs the nodes
/// into a [`TaskTree`].
fn build(nodes: Vec<PNode>, root: usize) -> Result<TaskTree, TreeParseError> {
    debug_assert_eq!(nodes[root].parent, None);
    let n = nodes.len();
    let all_numeric = nodes.iter().all(
        |p| matches!(&p.label, Some(l) if !l.is_empty() && l.bytes().all(|b| b.is_ascii_digit())),
    );
    // id_of[k] = final id of parse-order node k
    let id_of: Vec<usize> = if all_numeric {
        let mut seen = vec![false; n];
        let mut ids = Vec::with_capacity(n);
        for p in &nodes {
            let label = p.label.as_deref().expect("all labeled");
            let (line, col) = p.label_pos;
            let id: usize = label.parse().map_err(|_| TreeParseError::LabelId {
                line,
                col,
                detail: format!("`{label}` is out of range"),
            })?;
            if id >= n {
                return Err(TreeParseError::LabelId {
                    line,
                    col,
                    detail: format!("id {id} out of range for {n} node(s)"),
                });
            }
            if seen[id] {
                return Err(TreeParseError::LabelId {
                    line,
                    col,
                    detail: format!("duplicate id {id}"),
                });
            }
            seen[id] = true;
            ids.push(id);
        }
        ids
    } else {
        (0..n).collect()
    };
    let mut parents: Vec<Option<usize>> = vec![None; n];
    let mut work = vec![0.0; n];
    let mut output = vec![0.0; n];
    let mut exec = vec![0.0; n];
    for (k, p) in nodes.iter().enumerate() {
        let id = id_of[k];
        parents[id] = p.parent.map(|pk| id_of[pk]);
        work[id] = p.work.unwrap_or(1.0);
        output[id] = p.output.unwrap_or(1.0);
        exec[id] = p.exec.unwrap_or(0.0);
    }
    Ok(TaskTree::from_parents(&parents, &work, &output, &exec)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesched_model::NodeId;

    #[test]
    fn plain_newick_with_branch_lengths() {
        let t = from_newick("((a:1,b:2)c:0.5,d:3)root;").unwrap();
        assert_eq!(t.len(), 5);
        // preorder ids: root=0, c=1, a=2, b=3, d=4
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.parent(NodeId(1)), Some(NodeId(0)));
        assert_eq!(t.parent(NodeId(2)), Some(NodeId(1)));
        assert_eq!(t.output(NodeId(1)), 0.5);
        assert_eq!(t.output(NodeId(4)), 3.0);
        assert_eq!(t.work(NodeId(0)), 1.0, "default work");
        assert_eq!(t.output(NodeId(0)), 1.0, "default output");
        assert_eq!(t.exec(NodeId(0)), 0.0, "default exec");
    }

    #[test]
    fn attributes_and_numeric_ids() {
        let t = from_newick("(2[&work=5,output=6,exec=7],1[&work=8])0[&exec=0.5];").unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.work(NodeId(2)), 5.0);
        assert_eq!(t.output(NodeId(2)), 6.0);
        assert_eq!(t.exec(NodeId(2)), 7.0);
        assert_eq!(t.work(NodeId(1)), 8.0);
        assert_eq!(t.exec(NodeId(0)), 0.5);
        // children sorted by ascending id, the from_parents convention
        assert_eq!(t.children(NodeId(0)), &[NodeId(1), NodeId(2)]);
    }

    #[test]
    fn quoted_labels_and_whitespace() {
        let t = from_newick("( 'a b' :2 ,\n  c )\n'the root' ;").unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.output(NodeId(1)), 2.0);
    }

    #[test]
    fn anonymous_nodes() {
        let t = from_newick("((,),);").unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t.children(NodeId(0)).len(), 2);
    }

    #[test]
    fn roundtrip_small() {
        let t = TaskTree::from_parents(
            &[None, Some(0), Some(0), Some(1)],
            &[1.5, 2.0, 0.25, 3.0],
            &[0.5, 1.0, 2.0, 4.0],
            &[0.0, 0.125, 0.0, 7.0],
        )
        .unwrap();
        let back = from_newick(&to_newick(&t)).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn errors_carry_line_and_column() {
        // the second line opens a paren that never closes
        let e = from_newick("(a,\n(b,c;").unwrap_err();
        assert_eq!(
            e,
            TreeParseError::Syntax {
                line: 2,
                col: 5,
                expected: "`)` (unclosed `(`)",
                found: "`;`".into()
            }
        );
        assert_eq!(
            e.to_string(),
            "line 2, col 5: expected `)` (unclosed `(`), found `;`"
        );

        let e = from_newick("(a[&speed=3]);").unwrap_err();
        assert_eq!(
            e,
            TreeParseError::UnknownAttribute {
                line: 1,
                col: 5,
                name: "speed".into()
            }
        );

        let e = from_newick("(a[&work=1,work=2]);").unwrap_err();
        assert!(matches!(
            e,
            TreeParseError::DuplicateAttribute {
                name: "work",
                col: 12,
                ..
            }
        ));

        // branch length + output attribute clash, reported at the `:`
        let e = from_newick("(a[&output=1]:2);").unwrap_err();
        assert!(matches!(
            e,
            TreeParseError::DuplicateAttribute {
                name: "output",
                col: 14,
                ..
            }
        ));

        let e = from_newick("(a:x);").unwrap_err();
        assert_eq!(
            e.to_string(),
            "line 1, col 4: cannot parse branch length as a number"
        );

        let e = from_newick("(a,b); junk").unwrap_err();
        assert!(matches!(e, TreeParseError::Trailing { line: 1, col: 8 }));

        assert_eq!(from_newick("   \n "), Err(TreeParseError::Empty));

        // numeric labels must be dense and unique
        let e = from_newick("(1,1)0;").unwrap_err();
        assert_eq!(
            e.to_string(),
            "line 1, col 4: bad node id label: duplicate id 1"
        );
        let e = from_newick("(1,7)0;").unwrap_err();
        assert!(e.to_string().contains("id 7 out of range for 3 node(s)"));
    }

    #[test]
    fn comma_at_top_level_is_rejected() {
        let e = from_newick("a,b;").unwrap_err();
        assert!(matches!(e, TreeParseError::Syntax { .. }));
    }
}
