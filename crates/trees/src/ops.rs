//! Structural transforms: prune subtrees, extract a subtree, reroot.
//!
//! The transforms rebuild through `TaskTree::from_parents` (renumbering
//! survivors densely in ascending old-id order where nodes are dropped),
//! so the result obeys the same ascending-child-id convention as every
//! other tree in the workspace and round-trips through the writers
//! unchanged.

use treesched_model::{NodeId, TaskTree};

/// A failure applying a structural transform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpError {
    /// A node id outside the tree.
    UnknownNode {
        /// The offending id.
        id: usize,
        /// The tree size it was checked against.
        len: usize,
    },
    /// Pruning the root would leave no tree.
    PruneRoot,
}

impl std::fmt::Display for OpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpError::UnknownNode { id, len } => {
                write!(f, "node {id} out of range (tree has {len} node(s))")
            }
            OpError::PruneRoot => write!(f, "cannot prune the root"),
        }
    }
}

impl std::error::Error for OpError {}

/// Removes the subtrees rooted at `roots` (the named nodes and all their
/// descendants) and renumbers the survivors densely in ascending old-id
/// order. Pruning the root — directly or by listing every child path — is
/// an [`OpError::PruneRoot`].
pub fn prune(tree: &TaskTree, roots: &[usize]) -> Result<TaskTree, OpError> {
    let n = tree.len();
    let mut dead = vec![false; n];
    for &id in roots {
        if id >= n {
            return Err(OpError::UnknownNode { id, len: n });
        }
        if NodeId::from_index(id) == tree.root() {
            return Err(OpError::PruneRoot);
        }
        dead[id] = true;
    }
    // propagate: a node is dead if any ancestor is a prune root; ids are
    // arbitrary, so walk from each live node to its nearest decided
    // ancestor (path-compressed by memoizing along the way)
    let mut state = vec![0u8; n]; // 0 unknown, 1 live, 2 dead
    state[tree.root().index()] = 1;
    let mut path = Vec::new();
    for start in 0..n {
        if state[start] != 0 || dead[start] {
            if dead[start] {
                state[start] = 2;
            }
            continue;
        }
        path.clear();
        let mut cur = start;
        let verdict = loop {
            if state[cur] != 0 {
                break state[cur];
            }
            if dead[cur] {
                break 2;
            }
            path.push(cur);
            cur = tree
                .parent(NodeId::from_index(cur))
                .expect("non-root has a parent")
                .index();
        };
        for &i in &path {
            state[i] = verdict;
        }
    }
    let mut new_id = vec![usize::MAX; n];
    let mut kept = 0usize;
    for i in 0..n {
        if state[i] == 1 {
            new_id[i] = kept;
            kept += 1;
        }
    }
    let mut parents = Vec::with_capacity(kept);
    let mut work = Vec::with_capacity(kept);
    let mut output = Vec::with_capacity(kept);
    let mut exec = Vec::with_capacity(kept);
    for (i, &keep) in state.iter().enumerate() {
        if keep != 1 {
            continue;
        }
        let id = NodeId::from_index(i);
        parents.push(tree.parent(id).map(|p| new_id[p.index()]));
        work.push(tree.work(id));
        output.push(tree.output(id));
        exec.push(tree.exec(id));
    }
    Ok(TaskTree::from_parents(&parents, &work, &output, &exec)
        .expect("pruning a valid tree keeps it valid"))
}

/// Extracts the subtree rooted at `root` as a standalone tree, nodes
/// renumbered densely in ascending old-id order (the new root is id 0
/// only when `root` had the smallest id in its subtree).
pub fn subtree(tree: &TaskTree, root: usize) -> Result<TaskTree, OpError> {
    let n = tree.len();
    if root >= n {
        return Err(OpError::UnknownNode { id: root, len: n });
    }
    let r = NodeId::from_index(root);
    let (_, nodes) = tree.subtree(r);
    let mut member: Vec<usize> = nodes.iter().map(|i| i.index()).collect();
    member.sort_unstable();
    let mut new_id = vec![usize::MAX; n];
    for (k, &i) in member.iter().enumerate() {
        new_id[i] = k;
    }
    let mut parents = Vec::with_capacity(member.len());
    let mut work = Vec::with_capacity(member.len());
    let mut output = Vec::with_capacity(member.len());
    let mut exec = Vec::with_capacity(member.len());
    for &i in &member {
        let id = NodeId::from_index(i);
        parents.push(if id == r {
            None
        } else {
            tree.parent(id).map(|p| new_id[p.index()])
        });
        work.push(tree.work(id));
        output.push(tree.output(id));
        exec.push(tree.exec(id));
    }
    Ok(TaskTree::from_parents(&parents, &work, &output, &exec)
        .expect("a subtree of a valid tree is valid"))
}

/// Re-hangs the tree so `root` becomes its root: every edge on the path
/// from `root` up to the old root is reversed, and each reversed edge
/// keeps its output size (the weight travels with the edge, so the new
/// parent's output toward `root` is what the old child produced toward
/// it). Node ids, work, and exec are untouched; rerooting at the current
/// root returns the tree unchanged.
pub fn reroot(tree: &TaskTree, root: usize) -> Result<TaskTree, OpError> {
    let n = tree.len();
    if root >= n {
        return Err(OpError::UnknownNode { id: root, len: n });
    }
    let mut parents: Vec<Option<usize>> = (0..n)
        .map(|i| tree.parent(NodeId::from_index(i)).map(|p| p.index()))
        .collect();
    let orig_out: Vec<f64> = (0..n).map(|i| tree.output(NodeId::from_index(i))).collect();
    let mut output = orig_out.clone();
    // the path new root → old root; every edge on it reverses
    let mut path = vec![root];
    while let Some(p) = parents[*path.last().expect("non-empty")] {
        path.push(p);
    }
    for pair in path.windows(2) {
        let (child, parent) = (pair[0], pair[1]);
        parents[parent] = Some(child);
        output[parent] = orig_out[child];
    }
    parents[root] = None;
    output[root] = orig_out[*path.last().expect("non-empty")];
    let work: Vec<f64> = (0..n).map(|i| tree.work(NodeId::from_index(i))).collect();
    let exec: Vec<f64> = (0..n).map(|i| tree.exec(NodeId::from_index(i))).collect();
    Ok(TaskTree::from_parents(&parents, &work, &output, &exec)
        .expect("rerooting a valid tree keeps it valid"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TaskTree {
        // 0 ← {1, 2}; 1 ← {3, 4}; 2 ← {5}
        TaskTree::from_parents(
            &[None, Some(0), Some(0), Some(1), Some(1), Some(2)],
            &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            &[0.5, 1.5, 2.5, 3.5, 4.5, 5.5],
            &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5],
        )
        .unwrap()
    }

    #[test]
    fn prune_removes_whole_subtree() {
        let t = prune(&sample(), &[1]).unwrap();
        // survivors: old 0, 2, 5 → new 0, 1, 2
        assert_eq!(t.len(), 3);
        assert_eq!(t.work(NodeId(1)), 3.0);
        assert_eq!(t.work(NodeId(2)), 6.0);
        assert_eq!(t.parent(NodeId(2)), Some(NodeId(1)));
    }

    #[test]
    fn prune_root_is_refused() {
        assert_eq!(prune(&sample(), &[0]), Err(OpError::PruneRoot));
        let e = prune(&sample(), &[9]).unwrap_err();
        assert_eq!(e.to_string(), "node 9 out of range (tree has 6 node(s))");
    }

    #[test]
    fn subtree_renumbers_densely() {
        let t = subtree(&sample(), 1).unwrap();
        // members old {1, 3, 4} → new {0, 1, 2}
        assert_eq!(t.len(), 3);
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.work(NodeId(0)), 2.0);
        assert_eq!(t.children(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(t.exec(NodeId(2)), 0.4);
    }

    #[test]
    fn subtree_of_leaf_is_single_node() {
        let t = subtree(&sample(), 5).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.work(NodeId(0)), 6.0);
    }

    #[test]
    fn reroot_reverses_the_path_and_moves_edge_weights() {
        // reroot the sample at old node 3: path 3 → 1 → 0 reverses
        let t = reroot(&sample(), 3).unwrap();
        assert_eq!(t.len(), 6);
        assert_eq!(t.root(), NodeId(3));
        assert_eq!(t.parent(NodeId(1)), Some(NodeId(3)));
        assert_eq!(t.parent(NodeId(0)), Some(NodeId(1)));
        // off-path nodes keep their parents
        assert_eq!(t.parent(NodeId(2)), Some(NodeId(0)));
        assert_eq!(t.parent(NodeId(4)), Some(NodeId(1)));
        assert_eq!(t.parent(NodeId(5)), Some(NodeId(2)));
        // edge weights travel with their (reversed) edges
        assert_eq!(t.output(NodeId(1)), 3.5); // old edge 3→1
        assert_eq!(t.output(NodeId(0)), 1.5); // old edge 1→0
        assert_eq!(t.output(NodeId(3)), 0.5); // the old root's output
        assert_eq!(t.output(NodeId(2)), 2.5); // untouched
                                              // work/exec stay put
        assert_eq!(t.work(NodeId(3)), 4.0);
        assert_eq!(t.exec(NodeId(1)), 0.1);
    }

    #[test]
    fn reroot_at_current_root_is_identity() {
        assert_eq!(reroot(&sample(), 0).unwrap(), sample());
    }

    #[test]
    fn reroot_twice_round_trips() {
        let once = reroot(&sample(), 5).unwrap();
        assert_eq!(reroot(&once, 0).unwrap(), sample());
    }

    #[test]
    fn reroot_unknown_node_is_typed() {
        let e = reroot(&sample(), 6).unwrap_err();
        assert_eq!(e, OpError::UnknownNode { id: 6, len: 6 });
        assert_eq!(e.to_string(), "node 6 out of range (tree has 6 node(s))");
    }
}
