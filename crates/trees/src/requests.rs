//! Serve-wire request emission.
//!
//! Builds the JSONL request stream that `serve` (batch or daemon) and
//! `connect` consume, one line per requested processor count. The lines
//! are rendered through `treesched_serve`'s own [`RequestRecord`] — the
//! exact type the engine parses back — so `tree to-requests` output is
//! accepted verbatim by construction, not by convention.

use treesched_core::SeqAlgo;
use treesched_serve::{PlatformSpec, RequestRecord};

/// What to put on each emitted request line (besides the tree path).
#[derive(Clone, Debug)]
pub struct RequestOptions {
    /// Request ids are `{prefix}-p{P}` for processor count `P`.
    pub prefix: String,
    /// Scheduler registry name; omitted lines get the engine default.
    pub scheduler: Option<String>,
    /// One request per processor count, in this order.
    pub processors: Vec<u32>,
    /// Shared memory cap forwarded as the flat `cap` field.
    pub cap: Option<f64>,
    /// Sequential sub-algorithm.
    pub seq: Option<SeqAlgo>,
    /// Seed for randomized schedulers.
    pub seed: Option<u64>,
}

impl Default for RequestOptions {
    fn default() -> RequestOptions {
        RequestOptions {
            prefix: "t".into(),
            scheduler: None,
            processors: vec![1, 2, 4],
            cap: None,
            seq: None,
            seed: None,
        }
    }
}

/// Renders the request stream for `tree_path`: one line per processor
/// count in [`RequestOptions::processors`], each ending in `\n`.
pub fn to_requests(tree_path: &str, opts: &RequestOptions) -> String {
    let mut out = String::new();
    for &p in &opts.processors {
        let rec = RequestRecord {
            id: Some(format!("{}-p{p}", opts.prefix)),
            tree: tree_path.to_string(),
            scheduler: opts.scheduler.clone(),
            platform: Some(PlatformSpec::Flat {
                processors: p,
                cap: opts.cap,
            }),
            seq: opts.seq,
            seed: opts.seed,
        };
        out.push_str(&rec.to_json());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_parse_back_identically() {
        let opts = RequestOptions {
            prefix: "fork".into(),
            scheduler: Some("deepest".into()),
            processors: vec![1, 2, 4],
            cap: Some(64.0),
            seq: SeqAlgo::by_name("liu"),
            seed: Some(7),
        };
        let text = to_requests("data/fork.tree", &opts);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[1],
            "{\"id\":\"fork-p2\",\"tree\":\"data/fork.tree\",\
             \"scheduler\":\"deepest\",\"processors\":2,\"cap\":64,\
             \"seq\":\"liu\",\"seed\":7}"
        );
        for (line, p) in lines.iter().zip([1u32, 2, 4]) {
            let rec = RequestRecord::parse(line).expect("verbatim acceptance");
            assert_eq!(rec.id.as_deref(), Some(format!("fork-p{p}").as_str()));
            assert_eq!(
                rec.platform,
                Some(PlatformSpec::Flat {
                    processors: p,
                    cap: Some(64.0)
                })
            );
        }
    }

    #[test]
    fn defaults_stay_minimal() {
        let text = to_requests("x.tree", &RequestOptions::default());
        assert_eq!(
            text.lines().next().unwrap(),
            "{\"id\":\"t-p1\",\"tree\":\"x.tree\",\"processors\":1}"
        );
    }
}
