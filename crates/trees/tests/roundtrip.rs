//! Newick round-trip over the generator zoo plus malformed-input pins.
//!
//! The writer labels every node with its arena id and spells all three
//! weights, so `from_newick(to_newick(t))` must reproduce `t` exactly —
//! ids, work, output, exec, and child order (ascending id, the
//! `from_parents` convention every generator obeys).

use proptest::prelude::*;
use treesched_model::TaskTree;
use treesched_trees::{from_newick, to_newick};

fn assert_roundtrip(t: &TaskTree) {
    let nwk = to_newick(t);
    let back = from_newick(&nwk).expect("writer output parses");
    assert_eq!(t, &back, "round trip changed the tree for {nwk}");
}

#[test]
fn zoo_roundtrips() {
    use treesched_gen::{caterpillar, random_attachment, random_deep, spider, WeightRange};
    let mut zoo: Vec<TaskTree> = vec![
        TaskTree::chain(1, 3.0, 2.0, 1.0),
        TaskTree::chain(17, 1.5, 0.25, 0.0),
        TaskTree::fork(9, 2.0, 1.0, 0.5),
        TaskTree::complete(2, 5, 1.0, 2.0, 0.5),
        TaskTree::complete(3, 4, 2.5, 0.0, 1.0),
        caterpillar(10, 3),
        spider(6, 4),
    ];
    for seed in 0..8 {
        zoo.push(random_attachment(40, WeightRange::MIXED, seed));
        zoo.push(random_deep(40, 4, WeightRange::PEBBLE, seed));
    }
    for t in &zoo {
        assert_roundtrip(t);
    }
}

#[test]
fn assembly_trees_roundtrip() {
    use treesched_sparse::{assembly_tree, generate, generate::Stencil};
    for limit in [1, 4] {
        let t = assembly_tree(&generate::grid2d(7, 5, Stencil::Star), limit).unwrap();
        assert_roundtrip(&t);
        let t = assembly_tree(&generate::band(30, 3), limit).unwrap();
        assert_roundtrip(&t);
    }
}

fn arb_tree(max_nodes: usize) -> impl Strategy<Value = TaskTree> {
    (1..=max_nodes)
        .prop_flat_map(|n| {
            let parents: Vec<BoxedStrategy<usize>> = (1..n).map(|i| (0..i).boxed()).collect();
            let weights = proptest::collection::vec((0u32..100, 0u32..100, 0u32..100), n);
            (parents, weights)
        })
        .prop_map(|(parents, weights)| {
            let n = parents.len() + 1;
            let pvec: Vec<Option<usize>> = std::iter::once(None)
                .chain(parents.into_iter().map(Some))
                .collect();
            // quarter-integer weights exercise non-integer f64 Display
            let w: Vec<f64> = (0..n).map(|i| weights[i].0 as f64 / 4.0).collect();
            let f: Vec<f64> = (0..n).map(|i| weights[i].1 as f64 / 4.0).collect();
            let x: Vec<f64> = (0..n).map(|i| weights[i].2 as f64 / 4.0).collect();
            TaskTree::from_parents(&pvec, &w, &f, &x).expect("valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_trees_roundtrip(t in arb_tree(60)) {
        let nwk = to_newick(&t);
        let back = from_newick(&nwk).expect("writer output parses");
        prop_assert_eq!(t, back);
    }
}

// ---------------------------------------------------------------------------
// Malformed input: exact wording and positions are a contract
// ---------------------------------------------------------------------------

#[test]
fn malformed_newick_wording_is_pinned() {
    let cases: &[(&str, &str)] = &[
        ("", "input holds no tree"),
        (
            "(a,b)",
            "line 1, col 6: expected `,`, `)` or `;`, found end of input",
        ),
        (
            "(a,b));",
            "line 1, col 6: expected `;` (a `)` without a matching `(`), found `)`",
        ),
        (
            "(a,(b,c);",
            "line 1, col 9: expected `)` (unclosed `(`), found `;`",
        ),
        (
            "(a,\n(b",
            "line 2, col 3: expected `,`, `)` or `;`, found end of input",
        ),
        ("(a,b); x", "line 1, col 8: trailing text after the tree"),
        (
            "(a[&speed=1],b);",
            "line 1, col 5: unknown attribute `speed` (expected work, output or exec)",
        ),
        (
            "(a[&work=1,\n b[&work=2,work=3]);",
            "line 1, col 12: expected `=` after the attribute key, found `\\n`",
        ),
        (
            "(a[&work=1][&work=2],b);",
            "line 1, col 12: expected `,`, `)` or `;`, found `[`",
        ),
        (
            "(a[&work=1,work=2],b);",
            "line 1, col 12: duplicate `work` for this node",
        ),
        (
            "(a[&output=1]:2,b);",
            "line 1, col 14: duplicate `output` for this node",
        ),
        (
            "(a:zzz,b);",
            "line 1, col 4: cannot parse branch length as a number",
        ),
        (
            "(a[&work=],b);",
            "line 1, col 10: cannot parse work as a number",
        ),
        (
            "(1,1)2;",
            "line 1, col 4: bad node id label: duplicate id 1",
        ),
        (
            "(1,5)0;",
            "line 1, col 4: bad node id label: id 5 out of range for 3 node(s)",
        ),
        (
            "('x,b);",
            "line 1, col 8: expected closing `'`, found end of input",
        ),
    ];
    for (input, want) in cases {
        let got = from_newick(input).expect_err(input).to_string();
        assert_eq!(&got, want, "for input {input:?}");
    }
}

#[test]
fn malformed_mm_wording_is_pinned() {
    use treesched_trees::{parse_pattern, IngestOptions};
    let cases: &[(&str, &str)] = &[
        (
            "%MatrixMarket matrix coordinate pattern symmetric\n1 1 1\n1 1\n",
            "line 1: bad MatrixMarket header: first line must start with `%%MatrixMarket`",
        ),
        (
            "%%MatrixMarket matrix coordinate pattern skew-symmetric\n1 1 1\n1 1\n",
            "line 1: bad MatrixMarket header: unsupported symmetry `skew-symmetric` \
             (expected symmetric or general)",
        ),
        (
            "%%MatrixMarket matrix coordinate pattern symmetric\n% c\n2 x 3\n",
            "line 3: bad MatrixMarket header: size line must read `rows cols nnz`, bad cols",
        ),
        (
            "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n1\n",
            "line 3: bad MatrixMarket entry: bad column index",
        ),
        (
            "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 1\n",
            "line 3: bad MatrixMarket entry: missing value field",
        ),
    ];
    for (input, want) in cases {
        let got = parse_pattern(input).expect_err(input).to_string();
        assert_eq!(&got, want, "for input {input:?}");
    }
    // parse failures surface through load() with the path attached
    let e = treesched_trees::load("/nonexistent/x.nwk", IngestOptions::default()).unwrap_err();
    assert!(e
        .to_string()
        .starts_with("cannot read /nonexistent/x.nwk: "));
}

// ---------------------------------------------------------------------------
// Fixture corpus
// ---------------------------------------------------------------------------

fn fixture(name: &str) -> String {
    format!("{}/tests/data/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn fixtures_parse_and_validate() {
    use treesched_model::ValidateExt;
    use treesched_trees::{load, Format, IngestOptions};
    for (name, format, nodes) in [
        ("fork.nwk", Format::Newick, 6),
        ("weighted.nwk", Format::Newick, 5),
        ("plain.nwk", Format::Newick, 9),
        ("band8.mtx", Format::MatrixMarket, 8),
        ("star9.mtx", Format::MatrixMarket, 9),
    ] {
        let (tree, detected) = load(&fixture(name), IngestOptions::default()).expect(name);
        assert_eq!(detected, format, "{name}");
        assert_eq!(tree.len(), nodes, "{name}");
        tree.validate().expect(name);
        assert_roundtrip(&tree);
    }
}

#[test]
fn fork_fixture_has_explicit_ids() {
    use treesched_model::NodeId;
    let (tree, _) = treesched_trees::load(
        &fixture("fork.nwk"),
        treesched_trees::IngestOptions::default(),
    )
    .unwrap();
    // ids in the file are authoritative, not document order
    assert_eq!(tree.root(), NodeId(0));
    assert_eq!(tree.work(NodeId(0)), 5.0);
    assert_eq!(tree.work(NodeId(3)), 4.0);
    assert_eq!(tree.children(NodeId(3)), &[NodeId(4), NodeId(5)]);
}
