//! Styled Graphviz DOT export.
//!
//! The model crate's `io::to_dot` is the bare structural dump; this
//! renderer encodes the weights visually so big workloads stay readable
//! at a glance: node fill shades with `work` (white → dark grey, work
//! renders in white past mid-scale) and edge penwidth scales with the
//! child's `output` — the communication volume the edge carries.

use std::fmt::Write as _;
use treesched_model::TaskTree;

/// Options for [`styled_dot`].
#[derive(Clone, Debug)]
pub struct DotOptions {
    /// Graph name (shown by viewers, quoted/escaped here).
    pub name: String,
    /// Also print `w/f/n` numbers inside each node label.
    pub weights_in_labels: bool,
}

impl Default for DotOptions {
    fn default() -> DotOptions {
        DotOptions {
            name: "tree".into(),
            weights_in_labels: true,
        }
    }
}

/// Renders `tree` as a Graphviz digraph with work-shaded node fills and
/// output-scaled edge widths. Edges point child → parent (`rankdir=BT`),
/// matching the data-flow direction of the model.
pub fn styled_dot(tree: &TaskTree, opts: &DotOptions) -> String {
    let max_work = tree.max_work().max(f64::MIN_POSITIVE);
    let max_output = tree.max_output().max(f64::MIN_POSITIVE);
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", opts.name.replace('"', "\\\""));
    let _ = writeln!(s, "  rankdir=BT;");
    let _ = writeln!(
        s,
        "  node [shape=box, style=filled, fontsize=10, fontname=\"monospace\"];"
    );
    for i in tree.ids() {
        // work shade: 0 → white, max → dark grey (25% lightness floor)
        let frac = (tree.work(i) / max_work).clamp(0.0, 1.0);
        let lightness = 100.0 - 75.0 * frac;
        let grey = (lightness * 255.0 / 100.0).round() as u8;
        let font = if lightness < 55.0 { "white" } else { "black" };
        let label = if opts.weights_in_labels {
            format!(
                "{}\\nw={} f={} n={}",
                i.index(),
                tree.work(i),
                tree.output(i),
                tree.exec(i)
            )
        } else {
            format!("{}", i.index())
        };
        let _ = writeln!(
            s,
            "  n{} [label=\"{label}\", fillcolor=\"#{grey:02x}{grey:02x}{grey:02x}\", \
             fontcolor={font}];",
            i.index()
        );
    }
    for i in tree.ids() {
        if let Some(p) = tree.parent(i) {
            // output width: 0.5pt floor to 4pt for the largest transfer
            let frac = (tree.output(i) / max_output).clamp(0.0, 1.0);
            let width = 0.5 + 3.5 * frac;
            let _ = writeln!(
                s,
                "  n{} -> n{} [penwidth={width:.2}];",
                i.index(),
                p.index()
            );
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shades_and_widths_scale_with_weights() {
        let t = TaskTree::from_parents(
            &[None, Some(0), Some(0)],
            &[4.0, 2.0, 0.0],
            &[0.0, 3.0, 1.0],
            &[0.0; 3],
        )
        .unwrap();
        let dot = styled_dot(&t, &DotOptions::default());
        // max work → darkest fill, white text
        assert!(
            dot.contains("n0 [label=\"0\\nw=4 f=0 n=0\", fillcolor=\"#404040\", fontcolor=white];")
        );
        // zero work → white fill, black text
        assert!(
            dot.contains("n2 [label=\"2\\nw=0 f=1 n=0\", fillcolor=\"#ffffff\", fontcolor=black];")
        );
        // max output → 4pt, smaller one thinner
        assert!(dot.contains("n1 -> n0 [penwidth=4.00];"));
        assert!(dot.contains("n2 -> n0 [penwidth=1.67];"));
        assert!(dot.starts_with("digraph \"tree\" {"));
    }

    #[test]
    fn bare_labels_and_quoted_name() {
        let t = TaskTree::chain(2, 1.0, 1.0, 0.0);
        let dot = styled_dot(
            &t,
            &DotOptions {
                name: "a \"b\"".into(),
                weights_in_labels: false,
            },
        );
        assert!(dot.starts_with("digraph \"a \\\"b\\\"\" {"));
        assert!(dot.contains("n1 [label=\"1\","));
    }
}
