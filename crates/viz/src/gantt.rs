//! ASCII Gantt charts of parallel schedules.

use std::fmt::Write as _;
use treesched_core::Schedule;
use treesched_model::TaskTree;

/// Rendering options for [`gantt`].
#[derive(Clone, Copy, Debug)]
pub struct GanttOptions {
    /// Total character width of the time axis.
    pub width: usize,
    /// Print task ids inside their bars when they fit.
    pub label_tasks: bool,
}

impl Default for GanttOptions {
    fn default() -> Self {
        GanttOptions {
            width: 72,
            label_tasks: true,
        }
    }
}

/// Renders `schedule` as an ASCII Gantt chart: one row per processor, time
/// left to right, `#`-filled bars labeled with task ids where space
/// permits.
///
/// ```
/// use treesched_model::TaskTree;
/// use treesched_core::Heuristic;
/// use treesched_viz::{gantt, GanttOptions};
///
/// let tree = TaskTree::fork(4, 1.0, 1.0, 0.0);
/// let s = Heuristic::ParDeepestFirst.schedule(&tree, 2);
/// let chart = gantt(&tree, &s, GanttOptions::default());
/// assert!(chart.contains("p0 |"));
/// ```
pub fn gantt(tree: &TaskTree, schedule: &Schedule, opts: GanttOptions) -> String {
    let makespan = schedule.makespan();
    let width = opts.width.max(10);
    let scale = if makespan > 0.0 {
        width as f64 / makespan
    } else {
        1.0
    };
    let procs = schedule.processors as usize;
    let mut rows: Vec<Vec<char>> = vec![vec![' '; width]; procs];

    // draw bars per task, later tasks overwrite nothing (validated
    // schedules don't overlap per processor)
    let mut tasks: Vec<_> = tree.ids().collect();
    tasks.sort_by(|&a, &b| {
        schedule
            .placement(a)
            .start
            .total_cmp(&schedule.placement(b).start)
    });
    for id in tasks {
        let pl = schedule.placement(id);
        let c0 = ((pl.start * scale).floor() as usize).min(width - 1);
        let c1 = ((pl.finish * scale).ceil() as usize).clamp(c0 + 1, width);
        let row = &mut rows[pl.proc as usize];
        for cell in row.iter_mut().take(c1).skip(c0) {
            *cell = '#';
        }
        if opts.label_tasks {
            let label = id.index().to_string();
            if label.len() <= c1 - c0 {
                for (k, ch) in label.chars().enumerate() {
                    row[c0 + k] = ch;
                }
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Gantt chart: {} tasks, {} processors, makespan {:.3}",
        tree.len(),
        schedule.processors,
        makespan
    );
    for (p, row) in rows.iter().enumerate() {
        let line: String = row.iter().collect();
        let _ = writeln!(out, "p{p} |{}|", line);
    }
    // time axis
    let _ = writeln!(
        out,
        "   0{}{:.1}",
        " ".repeat(width.saturating_sub(6)),
        makespan
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesched_core::Heuristic;
    use treesched_model::TaskTree;

    #[test]
    fn rows_match_processors() {
        let t = TaskTree::fork(6, 1.0, 1.0, 0.0);
        let s = Heuristic::ParDeepestFirst.schedule(&t, 3);
        let g = gantt(&t, &s, GanttOptions::default());
        assert!(g.contains("p0 |"));
        assert!(g.contains("p1 |"));
        assert!(g.contains("p2 |"));
        assert!(!g.contains("p3 |"));
        assert!(g.contains("makespan 3.000"));
    }

    #[test]
    fn busy_processor_is_filled() {
        let t = TaskTree::chain(5, 1.0, 1.0, 0.0);
        let s = Heuristic::ParSubtrees.schedule(&t, 1);
        let g = gantt(
            &t,
            &s,
            GanttOptions {
                width: 20,
                label_tasks: false,
            },
        );
        let p0 = g.lines().find(|l| l.starts_with("p0 |")).unwrap();
        // a chain keeps the single processor fully busy
        let bar: String = p0.chars().skip(4).take(20).collect();
        assert!(bar.chars().all(|c| c == '#'), "{bar:?}");
    }

    #[test]
    fn labels_appear_when_requested() {
        let t = TaskTree::chain(3, 5.0, 1.0, 0.0);
        let s = Heuristic::ParSubtrees.schedule(&t, 1);
        let g = gantt(
            &t,
            &s,
            GanttOptions {
                width: 30,
                label_tasks: true,
            },
        );
        assert!(g.contains('2')); // leaf id drawn inside its bar
        let g2 = gantt(
            &t,
            &s,
            GanttOptions {
                width: 30,
                label_tasks: false,
            },
        );
        assert!(!g2.lines().any(|l| l.starts_with("p0") && l.contains('2')));
    }

    #[test]
    fn zero_width_is_clamped() {
        let t = TaskTree::chain(2, 1.0, 1.0, 0.0);
        let s = Heuristic::ParSubtrees.schedule(&t, 1);
        let g = gantt(
            &t,
            &s,
            GanttOptions {
                width: 0,
                label_tasks: false,
            },
        );
        assert!(g.contains("p0 |"));
    }
}
