//! Text rendering of trees and schedules: ASCII Gantt charts, memory
//! profiles, and tree sketches — the visual half of the experiment
//! tooling, with no graphics dependency.

pub mod dot;
pub mod gantt;
pub mod profile;
pub mod treeview;

pub use dot::{styled_dot, DotOptions};
pub use gantt::{gantt, GanttOptions};
pub use profile::{memory_profile_plot, ProfileOptions};
pub use treeview::tree_sketch;
