//! Text plots of memory profiles over time.

use std::fmt::Write as _;
use treesched_core::Schedule;
use treesched_model::TaskTree;

/// Rendering options for [`memory_profile_plot`].
#[derive(Clone, Copy, Debug)]
pub struct ProfileOptions {
    /// Character width of the time axis.
    pub width: usize,
    /// Number of rows of the plot.
    pub height: usize,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions {
            width: 72,
            height: 12,
        }
    }
}

/// Renders the memory profile of `schedule` as a block plot: time left to
/// right, memory bottom to top, each column showing the maximum memory in
/// its time slice. A horizontal marker line can be read off the axis labels
/// (peak and zero).
pub fn memory_profile_plot(tree: &TaskTree, schedule: &Schedule, opts: ProfileOptions) -> String {
    let profile = schedule.memory_profile(tree);
    let makespan = schedule.makespan();
    let width = opts.width.max(10);
    let height = opts.height.max(3);
    let peak = profile.iter().map(|&(_, m)| m).fold(0.0, f64::max);

    // per-column maximum memory: the profile is a step function that
    // changes at event times; column c covers [c, c+1) / scale
    let mut cols = vec![0.0f64; width];
    if makespan > 0.0 && peak > 0.0 {
        let scale = width as f64 / makespan;
        for w in profile.windows(2) {
            let (t0, m) = w[0];
            let t1 = w[1].0;
            let c0 = ((t0 * scale).floor() as usize).min(width - 1);
            let c1 = ((t1 * scale).ceil() as usize).clamp(c0 + 1, width);
            for col in cols.iter_mut().take(c1).skip(c0) {
                *col = col.max(m);
            }
        }
        if let Some(&(t_last, m_last)) = profile.last() {
            let c0 = ((t_last * scale).floor() as usize).min(width - 1);
            for col in cols.iter_mut().skip(c0) {
                *col = col.max(m_last);
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Memory profile: peak {:.3} over makespan {:.3}",
        peak, makespan
    );
    for row in (0..height).rev() {
        let threshold = peak * (row as f64 + 0.5) / height as f64;
        let line: String = cols
            .iter()
            .map(|&m| if m >= threshold { '█' } else { ' ' })
            .collect();
        let label = if row == height - 1 {
            format!("{peak:>9.2}")
        } else if row == 0 {
            format!("{:>9.2}", 0.0)
        } else {
            " ".repeat(9)
        };
        let _ = writeln!(out, "{label} |{line}|");
    }
    let _ = writeln!(
        out,
        "{}0{}{makespan:.1}",
        " ".repeat(10),
        " ".repeat(width.saturating_sub(6))
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesched_core::Heuristic;
    use treesched_model::TaskTree;

    #[test]
    fn plot_mentions_peak() {
        let t = TaskTree::fork(5, 1.0, 1.0, 0.0);
        let s = Heuristic::ParDeepestFirst.schedule(&t, 2);
        let plot = memory_profile_plot(&t, &s, ProfileOptions::default());
        let peak = s.peak_memory(&t);
        assert!(plot.contains(&format!("peak {peak:.3}")));
        assert!(plot.contains('█'));
    }

    #[test]
    fn top_row_only_at_peak() {
        // chain: memory is flat at 2 after the first step; the top row of
        // the plot must be reached somewhere
        let t = TaskTree::chain(8, 1.0, 1.0, 0.0);
        let s = Heuristic::ParSubtrees.schedule(&t, 1);
        let plot = memory_profile_plot(
            &t,
            &s,
            ProfileOptions {
                width: 40,
                height: 8,
            },
        );
        let top_row = plot.lines().nth(1).unwrap();
        assert!(top_row.contains('█'));
    }

    #[test]
    fn axis_labels_present() {
        let t = TaskTree::fork(3, 1.0, 1.0, 0.0);
        let s = Heuristic::ParSubtrees.schedule(&t, 2);
        let plot = memory_profile_plot(
            &t,
            &s,
            ProfileOptions {
                width: 30,
                height: 5,
            },
        );
        assert!(plot.contains("0.00"));
        assert!(plot.lines().count() >= 7);
    }
}
