//! Indented text sketches of task trees.

use std::fmt::Write as _;
use treesched_model::{NodeId, TaskTree};

/// Renders the tree as an indented sketch with box-drawing connectors,
/// truncating at `max_nodes` (a `...` marker reports elision). Weights are
/// shown as `w/f/n`.
pub fn tree_sketch(tree: &TaskTree, max_nodes: usize) -> String {
    let mut out = String::new();
    let mut printed = 0usize;
    // stack of (node, prefix, is_last_child, is_root)
    let mut stack: Vec<(NodeId, String, bool, bool)> =
        vec![(tree.root(), String::new(), true, true)];
    while let Some((v, prefix, last, is_root)) = stack.pop() {
        if printed >= max_nodes {
            let _ = writeln!(out, "{prefix}...");
            break;
        }
        let connector = if is_root {
            ""
        } else if last {
            "└─ "
        } else {
            "├─ "
        };
        let _ = writeln!(
            out,
            "{prefix}{connector}{} (w={} f={} n={})",
            v.index(),
            tree.work(v),
            tree.output(v),
            tree.exec(v)
        );
        printed += 1;
        let child_prefix = if is_root {
            String::new()
        } else if last {
            format!("{prefix}   ")
        } else {
            format!("{prefix}│  ")
        };
        let kids = tree.children(v);
        for (k, &c) in kids.iter().enumerate().rev() {
            stack.push((c, child_prefix.clone(), k == kids.len() - 1, false));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesched_model::TreeBuilder;

    #[test]
    fn sketch_shows_structure() {
        let mut b = TreeBuilder::new();
        let r = b.node(1.0, 2.0, 3.0);
        let x = b.child(r, 4.0, 5.0, 6.0);
        b.child(x, 7.0, 8.0, 9.0);
        b.child(r, 10.0, 11.0, 12.0);
        let t = b.build().unwrap();
        let s = tree_sketch(&t, 100);
        assert!(s.contains("0 (w=1 f=2 n=3)"));
        assert!(s.contains("├─ 1"));
        assert!(s.contains("└─ 3"));
        assert!(s.contains("└─ 2 (w=7 f=8 n=9)"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn sketch_truncates() {
        let t = treesched_model::TaskTree::chain(100, 1.0, 1.0, 0.0);
        let s = tree_sketch(&t, 5);
        assert!(s.contains("..."));
        assert!(s.lines().count() <= 7);
    }
}
