//! Extending the library: plugging a custom priority into the generic
//! event-based list scheduler (paper Algorithm 3).
//!
//! The example builds a "LargestFileFirst" policy — prioritize the ready
//! task whose output file is biggest, hoping to retire big files into their
//! parents early — and compares it against the paper's heuristics.
//!
//! ```sh
//! cargo run --release --example custom_heuristic
//! ```

use treesched::core::{evaluate, list_schedule, Heuristic};
use treesched::gen::{assembly_corpus, Scale};
use treesched::model::TaskTree;

/// Priority keys: smaller = earlier. We negate the file size so that large
/// files come first, and break ties by node id.
fn largest_file_first_keys(tree: &TaskTree) -> Vec<(i64, u32)> {
    tree.ids()
        .map(|i| (-(tree.output(i) as i64), i.0))
        .collect()
}

fn main() {
    let corpus = assembly_corpus(Scale::Small);
    let p = 4u32;
    println!(
        "{:<26} {:>16} {:>12} | {:>16} {:>12}",
        "tree", "custom makespan", "memory", "best-paper ms", "memory"
    );
    let mut custom_wins = 0usize;
    let mut total = 0usize;
    for e in corpus.iter().step_by(4) {
        let tree = &e.tree;
        let keys = largest_file_first_keys(tree);
        let custom = evaluate(tree, &list_schedule(tree, p, &keys));

        // best paper heuristic on memory for reference
        let best_mem = Heuristic::ALL
            .iter()
            .map(|h| evaluate(tree, &h.schedule(tree, p)))
            .min_by(|a, b| a.peak_memory.total_cmp(&b.peak_memory))
            .expect("four heuristics");
        println!(
            "{:<26} {:>16.3e} {:>12.3e} | {:>16.3e} {:>12.3e}",
            e.name, custom.makespan, custom.peak_memory, best_mem.makespan, best_mem.peak_memory
        );
        total += 1;
        if custom.peak_memory < best_mem.peak_memory {
            custom_wins += 1;
        }
    }
    println!(
        "\ncustom policy beats the best paper heuristic on memory in {custom_wins}/{total} trees"
    );
    println!("(list scheduling keeps its (2 - 1/p) makespan guarantee for ANY priority,");
    println!(" so custom policies only gamble with memory — exactly the paper's framing.)");
}
