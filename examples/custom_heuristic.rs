//! Extending the library: implementing the [`Scheduler`] trait and
//! registering it in the [`SchedulerRegistry`], next to the paper's
//! heuristics.
//!
//! The example builds a "LargestFileFirst" policy — prioritize the ready
//! task whose output file is biggest, hoping to retire big files into their
//! parents early — plugs it into the registry under the name
//! `LargestFileFirst` (alias `lff`), and compares it against the paper's
//! campaign through the exact same API every front-end uses.
//!
//! ```sh
//! cargo run --release --example custom_heuristic
//! ```

use treesched::core::api::{
    Outcome, Platform, Request, SchedError, Scheduler, SchedulerRegistry, Scratch,
};
use treesched::core::listsched::key_from_f64;
use treesched::core::try_evaluate_on;
use treesched::gen::{assembly_corpus, Scale};

/// The custom policy: a list scheduler whose priority is the (negated)
/// output-file size — smaller key = higher priority, ties by node id.
struct LargestFileFirst;

impl Scheduler for LargestFileFirst {
    fn name(&self) -> &'static str {
        "LargestFileFirst"
    }

    fn description(&self) -> &'static str {
        "example: list scheduling, biggest output file first"
    }

    fn schedule(&self, req: &Request<'_>, scratch: &mut Scratch) -> Result<Outcome, SchedError> {
        req.validate()?;
        let tree = req.tree;
        // Scratch::run_list_schedule_on reuses the campaign's ready-queue
        // buffers and is platform-aware: any Key3-encodable priority works,
        // on homogeneous and mixed-speed machines alike
        let schedule = scratch.run_list_schedule_on(tree, &req.platform, |i| {
            (key_from_f64(-tree.output(i)), i.0 as u64, 0)
        });
        let eval = try_evaluate_on(tree, &schedule, &req.platform).map_err(|error| {
            SchedError::InvalidSchedule {
                scheduler: self.name().to_string(),
                error,
            }
        })?;
        Ok(Outcome {
            domain_peaks: schedule.domain_peaks(tree, &req.platform),
            schedule,
            eval,
            diagnostics: Default::default(),
        })
    }
}

fn main() {
    // one registration: the custom scheduler joins every name-based
    // front-end (and, with `campaign = true`, every experiment sweep)
    let mut registry = SchedulerRegistry::standard();
    registry
        .register(Box::new(LargestFileFirst), &["lff"], false)
        .expect("fresh name");

    let corpus = assembly_corpus(Scale::Small);
    let p = 4u32;
    let mut scratch = Scratch::new();
    println!(
        "{:<26} {:>16} {:>12} | {:>16} {:>12}",
        "tree", "custom makespan", "memory", "best-paper ms", "memory"
    );
    let mut custom_wins = 0usize;
    let mut total = 0usize;
    for e in corpus.iter().step_by(4) {
        let tree = &e.tree;
        let req = Request::new(tree, Platform::new(p));
        let custom = registry
            .get("lff") // resolved by alias, like any built-in
            .unwrap()
            .schedule(&req, &mut scratch)
            .unwrap()
            .eval;

        // best paper heuristic on memory for reference
        let best_mem = registry
            .campaign()
            .map(|entry| entry.scheduler().schedule(&req, &mut scratch).unwrap().eval)
            .min_by(|a, b| a.peak_memory.total_cmp(&b.peak_memory))
            .expect("four campaign heuristics");
        println!(
            "{:<26} {:>16.3e} {:>12.3e} | {:>16.3e} {:>12.3e}",
            e.name, custom.makespan, custom.peak_memory, best_mem.makespan, best_mem.peak_memory
        );
        total += 1;
        if custom.peak_memory < best_mem.peak_memory {
            custom_wins += 1;
        }
    }
    println!(
        "\ncustom policy beats the best paper heuristic on memory in {custom_wins}/{total} trees"
    );
    println!("(list scheduling keeps its (2 - 1/p) makespan guarantee for ANY priority,");
    println!(" so custom policies only gamble with memory — exactly the paper's framing.)");
}
