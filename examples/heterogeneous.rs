//! Heterogeneous platforms end to end: mixed-speed processor classes,
//! NUMA-style memory domains, and cross-domain communication costs flowing
//! through the same `Scheduler` API, serving engine, and JSONL records as
//! the paper's uniform machine.
//!
//! ```sh
//! cargo run --release --example heterogeneous
//! ```

use std::sync::Arc;
use treesched::core::api::{Platform, Request, SchedError, Scratch};
use treesched::core::{makespan_lower_bound_on, SchedulerRegistry};
use treesched::serve::{ServeEngine, ServeRequest};
use treesched::TaskTree;

fn main() {
    let tree = TaskTree::complete(3, 5, 1.0, 2.0, 0.5);
    let registry = SchedulerRegistry::standard();
    let mut scratch = Scratch::new();

    // 2 fast + 2 slow processors; each pair owns its own memory domain.
    // The fluent builder validates at `build()`, so malformed platforms
    // are typed errors instead of panics deep inside a scheduler.
    let platform = Platform::builder()
        .class(2, 2.0) // procs 0-1, double speed
        .class(2, 1.0) // procs 2-3, baseline
        .domain(400.0, &[0])
        .domain(200.0, &[1])
        .build()
        .expect("a well-formed platform");
    let flat = Platform::new(4);

    // Every registered scheduler serves mixed speeds and split memory now:
    // subtree schedulers place whole subtrees speed-aware, the capped
    // family enforces each domain's capacity (cap_violations stays 0).
    println!(
        "{:<18} {:>12} {:>12} {:>10}  domain peaks",
        "scheduler", "het ms", "uniform ms", "vs bound"
    );
    let lb = makespan_lower_bound_on(&tree, &platform);
    for entry in registry.iter() {
        let het = entry
            .scheduler()
            .schedule(&Request::new(&tree, platform.clone()), &mut scratch)
            .expect("comm-free platforms are universal now");
        let hom = entry
            .scheduler()
            .schedule(
                &Request::new(&tree, flat.clone().with_memory_cap(1e9)),
                &mut scratch,
            )
            .expect("uniform platforms are universal");
        let peaks: Vec<String> = het.domain_peaks.iter().map(|p| format!("{p:.0}")).collect();
        println!(
            "{:<18} {:>12.2} {:>12.2} {:>9.2}x  [{}]",
            entry.name(),
            het.eval.makespan,
            hom.eval.makespan,
            het.eval.makespan / lb,
            peaks.join(", ")
        );
    }

    // Charge half a time unit per unit of output crossing between the two
    // domains: the list schedulers delay cross-domain children by
    // `output x cost`; the subtree/capped families refuse, typed.
    let costly = platform
        .clone()
        .into_builder()
        .comm_cost(0, 1, 0.5)
        .build()
        .expect("a symmetric cost matrix");
    println!("\nwith transfer costs (0-1:0.5):");
    let comm_lb = makespan_lower_bound_on(&tree, &costly);
    for entry in registry.iter() {
        match entry
            .scheduler()
            .schedule(&Request::new(&tree, costly.clone()), &mut scratch)
        {
            Ok(out) => println!(
                "{:<18} {:>12.2} {:>9.2}x",
                entry.name(),
                out.eval.makespan,
                out.eval.makespan / comm_lb
            ),
            Err(SchedError::UnsupportedPlatform { reason, .. }) => {
                println!("{:<18} {:>12}  — refused: {reason}", entry.name(), "n/a");
            }
            Err(e) => panic!("{}: {e}", entry.name()),
        }
    }

    // The serving engine moves heterogeneous platforms whole: submit the
    // same stream twice on different worker counts and get identical bytes
    // (the `comm` matrix rides along in each echoed platform object).
    let tree = Arc::new(tree);
    let stream = |platform: &Platform| -> Vec<ServeRequest> {
        ["deepest", "inner", "cp", "fifo"]
            .iter()
            .map(|name| {
                ServeRequest::new(Arc::clone(&tree), *name, platform.clone())
                    .with_id(format!("het/{name}"))
            })
            .collect()
    };
    let serve = |workers: usize| -> Vec<String> {
        let mut engine = ServeEngine::new(SchedulerRegistry::standard(), workers);
        engine
            .run(stream(&costly))
            .iter()
            .map(treesched::serve::result_json)
            .collect()
    };
    let narrow = serve(1);
    let wide = serve(4);
    assert_eq!(narrow, wide, "responses are worker-count independent");
    println!("\nserving responses (identical for 1 and 4 workers):");
    for line in &narrow {
        print!("{line}");
    }
}
