//! The paper's future-work direction (§7): scheduling under a hard memory
//! cap. Uses the safe sequential-activation admission policy: any cap at
//! least the sequential reference memory is honored with zero violations,
//! trading makespan for memory as the cap tightens.
//!
//! ```sh
//! cargo run --release --example memory_cap
//! ```

use treesched::core::{evaluate, mem_bounded_schedule, memory_reference, Admission, Heuristic};
use treesched::gen::{assembly_corpus, Scale};
use treesched::seq::best_postorder;

fn main() {
    let corpus = assembly_corpus(Scale::Small);
    // pick the entry with the most inherent parallelism so the cap bites
    let entry = corpus
        .iter()
        .max_by(|a, b| a.stats().parallelism().total_cmp(&b.stats().parallelism()))
        .expect("corpus is nonempty");
    let tree = &entry.tree;
    let order = best_postorder(tree).order;
    let mseq = memory_reference(tree);
    let p = 8u32;

    println!("tree {} — {}", entry.name, entry.stats());
    println!("p = {p}, sequential memory M_seq = {mseq:.3e}\n");

    // unbounded references
    println!("unbounded heuristics:");
    for h in [Heuristic::ParSubtrees, Heuristic::ParDeepestFirst] {
        let ev = evaluate(tree, &h.schedule(tree, p));
        println!(
            "  {:<18} makespan {:>10.3e}  memory {:>10.3e} ({:.2} x M_seq)",
            h.name(),
            ev.makespan,
            ev.peak_memory,
            ev.peak_memory / mseq
        );
    }

    println!("\nmemory-capped list scheduling (sequential activation):");
    println!(
        "  {:>10} {:>12} {:>12} {:>12} {:>11}",
        "cap/M_seq", "peak", "peak/M_seq", "makespan", "violations"
    );
    for factor in [1.0, 1.25, 1.5, 2.0, 3.0, 5.0] {
        let run = mem_bounded_schedule(tree, p, &order, mseq * factor, Admission::SequentialOrder);
        println!(
            "  {:>10.2} {:>12.3e} {:>12.2} {:>12.3e} {:>11}",
            factor,
            run.peak_memory,
            run.peak_memory / mseq,
            run.schedule.makespan(),
            run.violations
        );
    }
    println!("\nEvery cap >= M_seq is honored exactly (violations = 0): the");
    println!("scheduler exposes the memory/makespan dial the paper calls for.");
}
