//! The bi-objective trade-off: sweep the processor count and watch each
//! heuristic trade memory for makespan (the tension of paper Theorem 2 —
//! no algorithm can approximate both objectives at once).
//!
//! ```sh
//! cargo run --release --example memory_tradeoff
//! ```

use treesched::core::{evaluate, makespan_lower_bound, memory_reference, Heuristic};
use treesched::gen::{assembly_corpus, Scale};

fn main() {
    // one representative assembly tree from the corpus
    let corpus = assembly_corpus(Scale::Small);
    // pick the widest tree so the processor sweep is meaningful
    let entry = corpus
        .iter()
        .max_by(|a, b| a.stats().parallelism().total_cmp(&b.stats().parallelism()))
        .expect("corpus is nonempty");
    let tree = &entry.tree;
    println!("tree {} — {}", entry.name, entry.stats());
    let mem_ref = memory_reference(tree);
    println!("sequential memory reference: {mem_ref:.3e}\n");

    println!(
        "{:<6} {:<18} {:>12} {:>10} {:>12} {:>10}",
        "p", "heuristic", "makespan", "ms/LB", "memory", "mem/seq"
    );
    for p in [1u32, 2, 4, 8, 16, 32] {
        let lb = makespan_lower_bound(tree, p);
        for h in Heuristic::ALL {
            let ev = evaluate(tree, &h.schedule(tree, p));
            println!(
                "{:<6} {:<18} {:>12.3e} {:>10.3} {:>12.3e} {:>10.3}",
                p,
                h.name(),
                ev.makespan,
                ev.makespan / lb,
                ev.peak_memory,
                ev.peak_memory / mem_ref
            );
        }
        println!();
    }
    println!("More processors shrink the makespan but inflate the memory —");
    println!("and the heuristics cover different points of that frontier.");
}
