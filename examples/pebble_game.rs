//! The Pebble Game model (paper §4): unit files, zero programs, unit times.
//! Demonstrates the paper's theory on its own constructions:
//!
//! * Figure 1 — the 3-Partition reduction achieving its exact bounds;
//! * Figure 2 — the inapproximability tree (memory blows up when the
//!   makespan is pushed down);
//! * Figures 3–5 — the worst-case gadgets for each heuristic.
//!
//! ```sh
//! cargo run --release --example pebble_game
//! ```

use treesched::core::{evaluate, par_deepest_first, par_inner_first, par_subtrees, SeqAlgo};
use treesched::gen::theory;
use treesched::seq::liu_exact;

fn main() {
    // --- Figure 1: 3-Partition reduction -------------------------------
    let a = [4u64, 5, 4, 4, 4, 5, 5, 4, 4]; // m = 3, B = 13
    let tree = theory::three_partition_tree(&a);
    let groups = [[0usize, 1, 2], [3, 4, 5], [6, 7, 8]];
    let (schedule, bmem, bcmax) = theory::three_partition_schedule(&tree, &a, &groups);
    let ev = evaluate(&tree, &schedule);
    println!("Figure 1 (3-Partition, m=3, B=13): {} nodes", tree.len());
    println!(
        "  witness schedule: makespan {} (bound {bcmax}), memory {} (bound {bmem})",
        ev.makespan, ev.peak_memory
    );

    // --- Figure 2: inapproximability tree ------------------------------
    let (n, delta) = (6usize, 8usize);
    let tree = theory::inapprox_tree(n, delta);
    println!(
        "\nFigure 2 (inapproximability, n={n}, δ={delta}): {} nodes, critical path {}",
        tree.len(),
        tree.critical_path()
    );
    println!(
        "  optimal sequential memory: {} (= n + δ)",
        liu_exact(&tree).peak
    );
    for p in [2u32, 8, 32] {
        let ev = evaluate(&tree, &par_deepest_first(&tree, p));
        println!(
            "  ParDeepestFirst p={p:<2}: makespan {:>5} memory {:>6}",
            ev.makespan, ev.peak_memory
        );
    }
    println!(
        "  (pushing the makespan toward δ+2 = {} forces memory far above n+δ)",
        delta + 2
    );

    // --- Figure 3: the fork --------------------------------------------
    let (p, k) = (8u32, 32usize);
    let tree = theory::fork_tree(p as usize, k);
    let ms = evaluate(&tree, &par_subtrees(&tree, p, SeqAlgo::default())).makespan;
    println!(
        "\nFigure 3 (fork, p={p}, k={k}): ParSubtrees makespan {ms}, optimal {}, ratio {:.2} (→ p)",
        k + 1,
        ms / (k + 1) as f64
    );

    // --- Figure 4: ParInnerFirst gadget --------------------------------
    let (p, k) = (4usize, 12usize);
    let tree = theory::inner_first_gadget(p, k);
    let seq = liu_exact(&tree).peak;
    let ev = evaluate(&tree, &par_inner_first(&tree, p as u32));
    println!(
        "\nFigure 4 (gadget, p={p}, k={k}): sequential memory {seq}, ParInnerFirst memory {}",
        ev.peak_memory
    );

    // --- Figure 5: long chains ------------------------------------------
    let (chains, len) = (24usize, 8usize);
    let tree = theory::long_chain_tree(chains, len);
    let seq = liu_exact(&tree).peak;
    let ev = evaluate(&tree, &par_deepest_first(&tree, chains as u32));
    println!(
        "\nFigure 5 (long chains, c={chains}): sequential memory {seq}, ParDeepestFirst memory {}",
        ev.peak_memory
    );
    println!("  (grows with the number of chains — unbounded ratio)");
}
