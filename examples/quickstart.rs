//! Quickstart: build a small task tree, run all four heuristics, and
//! inspect the memory/makespan trade-off.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use treesched::core::{evaluate, makespan_lower_bound, memory_reference, Heuristic};
use treesched::seq::{best_postorder, liu_exact};
use treesched::TreeBuilder;

fn main() {
    // A toy assembly-tree-like workload: weights are (w, f, n) =
    // (processing time, output file, execution file).
    let mut b = TreeBuilder::new();
    let root = b.node(4.0, 0.0, 6.0);
    let left = b.child(root, 3.0, 5.0, 4.0);
    let right = b.child(root, 3.0, 5.0, 4.0);
    for parent in [left, right] {
        for _ in 0..3 {
            let mid = b.child(parent, 2.0, 3.0, 2.0);
            b.child(mid, 1.0, 2.0, 1.0);
            b.child(mid, 1.0, 2.0, 1.0);
        }
    }
    let tree = b.build().expect("valid tree");

    println!("tree: {}", treesched::TreeStats::of(&tree));
    println!(
        "sequential memory: best postorder = {}, Liu exact = {}",
        best_postorder(&tree).peak,
        liu_exact(&tree).peak
    );
    println!();

    for p in [2u32, 4] {
        println!(
            "p = {p}   (makespan lower bound {:.1}, sequential memory reference {:.1})",
            makespan_lower_bound(&tree, p),
            memory_reference(&tree)
        );
        println!(
            "  {:<18} {:>10} {:>12}",
            "heuristic", "makespan", "peak memory"
        );
        for h in Heuristic::ALL {
            let schedule = h.schedule(&tree, p);
            let ev = evaluate(&tree, &schedule);
            println!(
                "  {:<18} {:>10.1} {:>12.1}",
                h.name(),
                ev.makespan,
                ev.peak_memory
            );
        }
        println!();
    }
    println!("Expect ParSubtrees to win on memory and ParDeepestFirst on makespan.");
}
