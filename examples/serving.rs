//! Batched serving: push a stream of scheduling requests through the
//! multi-worker engine and watch same-tree batching avoid repeated
//! traversal work.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use std::sync::Arc;
use treesched::core::{Platform, SchedulerRegistry};
use treesched::serve::{ServeEngine, ServeRequest};
use treesched::TaskTree;

fn main() {
    // Two workloads that keep arriving, interleaved — the traffic shape a
    // long-lived service sees, and the one a per-request front-end wastes
    // the most work on.
    let wide = Arc::new(TaskTree::fork(64, 1.0, 1.0, 0.0));
    let deep = Arc::new(TaskTree::complete(2, 7, 1.0, 2.0, 0.5));

    let mut engine = ServeEngine::new(SchedulerRegistry::standard(), 2);
    for p in [2u32, 4, 8, 16] {
        for scheduler in ["subtrees", "deepest", "inner"] {
            for (tag, tree) in [("wide", &wide), ("deep", &deep)] {
                engine.submit(
                    ServeRequest::new(Arc::clone(tree), scheduler, Platform::new(p))
                        .with_id(format!("{tag}/p{p}/{scheduler}")),
                );
            }
        }
    }

    println!("draining {} queued requests...\n", engine.queued());
    let results = engine.drain();
    println!(
        "{:<20} {:>10} {:>12} {:>12}",
        "request", "makespan", "vs bound", "peak memory"
    );
    for r in &results {
        let out = r.outcome.as_ref().expect("campaign schedulers are total");
        println!(
            "{:<20} {:>10.1} {:>11.2}x {:>12.1}",
            r.id.as_deref().unwrap_or("-"),
            out.outcome.eval.makespan,
            out.outcome.eval.makespan / out.ms_lb,
            out.outcome.eval.peak_memory,
        );
    }

    let stats = engine.stats();
    println!(
        "\n{} requests in {} same-tree batches across {} workers",
        stats.requests,
        stats.batches,
        engine.workers()
    );
    println!(
        "reference traversals: {} computed, {} served from warm caches",
        stats.traversal_computes, stats.traversal_reuses
    );

    // Results arrive in submission order no matter how many workers ran —
    // resubmitting on a wider engine reproduces the stream exactly.
    let makespans: Vec<f64> = results
        .iter()
        .map(|r| r.outcome.as_ref().unwrap().outcome.eval.makespan)
        .collect();
    let mut wider = ServeEngine::new(SchedulerRegistry::standard(), 8);
    for p in [2u32, 4, 8, 16] {
        for scheduler in ["subtrees", "deepest", "inner"] {
            for (_, tree) in [("wide", &wide), ("deep", &deep)] {
                wider.submit(ServeRequest::new(
                    Arc::clone(tree),
                    scheduler,
                    Platform::new(p),
                ));
            }
        }
    }
    let again: Vec<f64> = wider
        .drain()
        .iter()
        .map(|r| r.outcome.as_ref().unwrap().outcome.eval.makespan)
        .collect();
    assert_eq!(makespans, again, "serving is worker-count independent");
    println!("\n8-worker engine reproduced the 2-worker stream exactly.");
}
