//! End-to-end multifrontal pipeline: generate a sparse matrix pattern,
//! compute a fill-reducing ordering and the elimination tree, amalgamate it
//! into an assembly tree with the paper's weight formulas, and schedule the
//! factorization on `p` processors.
//!
//! ```sh
//! cargo run --release --example sparse_factorization
//! ```

use treesched::core::{evaluate, makespan_lower_bound, memory_reference, Heuristic};
use treesched::sparse::{assembly, etree, generate, ordering};
use treesched::TreeStats;

fn main() {
    // a 2D Laplacian, the canonical multifrontal benchmark matrix
    let (nx, ny) = (40, 40);
    let pattern = generate::grid2d(nx, ny, generate::Stencil::Star);
    println!(
        "matrix: {}x{} grid Laplacian, n = {}, nnz/row = {:.1}",
        nx,
        ny,
        pattern.n(),
        pattern.nnz_per_row()
    );

    for (name, ord) in [
        ("natural", ordering::Ordering::natural(pattern.n())),
        ("minimum degree", ordering::min_degree(&pattern)),
        ("nested dissection", ordering::nested_dissection_2d(nx, ny)),
    ] {
        let permuted = pattern.permute(&ord.order);
        let et = etree::elimination_tree(&permuted);
        let cc = etree::column_counts(&permuted, &et);
        let fill = etree::factor_nnz(&cc);
        let tree = assembly::assembly_tree_from_etree(&et, &cc, 4).expect("connected pattern");
        let stats = TreeStats::of(&tree);
        println!("\nordering: {name}");
        println!("  factor nonzeros: {fill}");
        println!("  assembly tree (amalgamation x4): {stats}");

        let p = 8;
        println!(
            "  schedule on p = {p} (makespan LB {:.3e}, seq memory {:.3e}):",
            makespan_lower_bound(&tree, p),
            memory_reference(&tree)
        );
        for h in Heuristic::ALL {
            let ev = evaluate(&tree, &h.schedule(&tree, p));
            println!(
                "    {:<18} makespan {:>10.3e}   memory {:>10.3e}",
                h.name(),
                ev.makespan,
                ev.peak_memory
            );
        }
    }
    println!("\nNested dissection exposes tree parallelism (shorter makespans);");
    println!("minimum degree minimizes fill. Both beat the natural ordering.");
}
