//! Visual tour: tree sketch, Gantt charts and memory profiles for two
//! heuristics on the same workload, side by side.
//!
//! ```sh
//! cargo run --release --example visualize
//! ```

use treesched::core::{evaluate, Heuristic};
use treesched::gen::theory::inner_first_gadget;
use treesched::viz::{gantt, memory_profile_plot, tree_sketch, GanttOptions, ProfileOptions};

fn main() {
    // the paper's Figure 4 gadget makes the memory contrast visible
    let (p, k) = (3usize, 4usize);
    let tree = inner_first_gadget(p, k);
    println!(
        "Figure 4 gadget (p = {p}, k = {k}), {} tasks:\n",
        tree.len()
    );
    println!("{}", tree_sketch(&tree, 24));

    for h in [Heuristic::ParSubtrees, Heuristic::ParInnerFirst] {
        let schedule = h.schedule(&tree, p as u32);
        let ev = evaluate(&tree, &schedule);
        println!(
            "=== {} — makespan {}, peak memory {} ===",
            h.name(),
            ev.makespan,
            ev.peak_memory
        );
        print!(
            "{}",
            gantt(
                &tree,
                &schedule,
                GanttOptions {
                    width: 60,
                    label_tasks: true
                }
            )
        );
        println!();
        print!(
            "{}",
            memory_profile_plot(
                &tree,
                &schedule,
                ProfileOptions {
                    width: 60,
                    height: 8
                }
            )
        );
        println!();
    }
    println!("ParSubtrees keeps the memory profile low and flat; ParInnerFirst");
    println!("finishes sooner but stacks up leaf files (the Figure 4 effect).");
}
