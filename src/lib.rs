//! # treesched — memory- and makespan-aware scheduling of task trees
//!
//! Facade crate re-exporting the full `treesched` workspace: a Rust
//! reproduction of Marchal, Sinnen and Vivien, *“Scheduling tree-shaped task
//! graphs to minimize memory and makespan”* (INRIA RR-8082 / IPDPS 2013).
//!
//! * [`model`] — the task-tree data model (paper §3).
//! * [`seq`] — sequential memory-optimal traversals (Liu 1986/1987).
//! * [`core`] — the paper's parallel heuristics and simulators (§5), all
//!   reachable through the unified scheduling API ([`core::api`]: the
//!   `Scheduler` trait, `Platform`/`Request`/`Outcome`, and the name-based
//!   `SchedulerRegistry`).
//! * [`sparse`] — sparse-matrix substrate producing assembly trees (§6.2).
//! * [`gen`] — instance generators, including the proof constructions (§4).
//! * [`viz`] — text rendering: Gantt charts, memory profiles, tree sketches.
//! * [`serve`] — batched serving: sharded multi-worker request streams
//!   over the scheduler registry, with a JSONL wire protocol.
//! * [`transport`] — the long-lived serving daemon: streaming drains
//!   with per-client ordered response channels, bounded in-flight
//!   backpressure, and stdio-pipe / Unix-socket transports.
//! * [`trees`] — the workload toolbox: attributed-Newick and MatrixMarket
//!   ingest, prune/subtree/reroot transforms, and serve-wire request
//!   export.
//! * [`obs`] — observability: lock-free counters and gauges, exact-merge
//!   log2 latency histograms, stage spans, and `MetricsRegistry`
//!   snapshots rendered as JSONL or Prometheus-style text.
//! * [`mod@bench`] — the experiment layer: declarative campaign specs
//!   ([`bench::CampaignSpec`]) executed over the serving engine, plus the
//!   paper's table/figure aggregations.
//!
//! The most common entry points are re-exported at the crate root.

pub use treesched_bench as bench;
pub use treesched_core as core;
pub use treesched_gen as gen;
pub use treesched_model as model;
pub use treesched_obs as obs;
pub use treesched_seq as seq;
pub use treesched_serve as serve;
pub use treesched_sparse as sparse;
pub use treesched_transport as transport;
pub use treesched_trees as trees;
pub use treesched_viz as viz;

pub use treesched_model::{NodeId, TaskTree, TreeBuilder, TreeStats};
