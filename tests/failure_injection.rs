//! Failure injection: corrupted schedules must be rejected by the
//! validator, malformed inputs must fail cleanly across the stack.

use treesched::core::{Heuristic, Placement, Schedule, ScheduleError};
use treesched::gen::{assembly_corpus, random_attachment, Scale, WeightRange};
use treesched::model::{io, NodeId};

#[test]
fn validator_catches_shifted_start() {
    // pull a non-leaf task earlier than its child's finish
    let t = random_attachment(30, WeightRange::MIXED, 7);
    let mut s = Heuristic::ParDeepestFirst.schedule(&t, 4);
    assert!(s.validate(&t).is_ok());
    let victim = t
        .ids()
        .find(|&i| !t.is_leaf(i))
        .expect("tree has inner nodes");
    let child = t.children(victim)[0];
    let child_finish = s.placement(child).finish;
    let pl = &mut s.placements[victim.index()];
    let w = pl.finish - pl.start;
    pl.start = (child_finish - 0.5).max(0.0);
    pl.finish = pl.start + w;
    assert!(matches!(
        s.validate(&t),
        Err(ScheduleError::DependencyViolated { .. }) | Err(ScheduleError::Overlap { .. })
    ));
}

#[test]
fn validator_catches_truncated_and_stretched_intervals() {
    let t = random_attachment(20, WeightRange::MIXED, 9);
    let base = Heuristic::ParSubtrees.schedule(&t, 2);

    // truncated placement table
    let mut short = base.clone();
    short.placements.pop();
    assert!(matches!(
        short.validate(&t),
        Err(ScheduleError::WrongLength { .. })
    ));

    // interval not matching the work
    let mut stretched = base.clone();
    stretched.placements[0].finish += 1.0;
    assert!(matches!(
        stretched.validate(&t),
        Err(ScheduleError::BadInterval { .. })
    ));

    // NaN start
    let mut nan = base.clone();
    nan.placements[0].start = f64::NAN;
    assert!(matches!(
        nan.validate(&t),
        Err(ScheduleError::BadInterval { .. })
    ));

    // negative start
    let mut neg = base;
    neg.placements[0] = Placement {
        proc: 0,
        start: -1.0,
        finish: -1.0 + t.work(NodeId(0)),
    };
    assert!(matches!(
        neg.validate(&t),
        Err(ScheduleError::BadInterval { .. })
    ));
}

#[test]
fn validator_catches_double_booking() {
    let t = random_attachment(25, WeightRange::MIXED, 11);
    let mut s = Heuristic::ParInnerFirst.schedule(&t, 4);
    // force two concurrent tasks onto one processor
    let mut by_start: Vec<NodeId> = t.ids().collect();
    by_start.sort_by(|&a, &b| s.placement(a).start.total_cmp(&s.placement(b).start));
    // find two overlapping-in-time tasks on different procs
    let mut moved = false;
    'outer: for (i, &a) in by_start.iter().enumerate() {
        for &b in &by_start[i + 1..] {
            let (pa, pb) = (s.placement(a), s.placement(b));
            if pa.proc != pb.proc && pb.start < pa.finish - 1e-9 {
                s.placements[b.index()].proc = pa.proc;
                moved = true;
                break 'outer;
            }
        }
    }
    if moved {
        assert!(s.validate(&t).is_err());
    }
}

#[test]
fn corrupted_tree_files_fail_cleanly() {
    let t = random_attachment(15, WeightRange::MIXED, 3);
    let good = io::to_text(&t);

    // bit-flip style corruptions of the text form
    let corruptions = [
        good.replace("0 -1", "0 7"),        // root points at a child
        good.replacen("1 0", "1 1", 1),     // self-loop
        good.replace(' ', ""),              // mangled separators
        good[..good.len() / 2].to_string(), // truncation mid-line
    ];
    for (k, bad) in corruptions.iter().enumerate() {
        if bad == &good {
            continue;
        }
        let parsed = io::from_text(bad);
        if let Ok(tree) = parsed {
            // if it still parses it must still be a *valid tree* (e.g. the
            // truncation may fall on a line boundary)
            use treesched::model::ValidateExt;
            assert!(
                tree.validate().is_ok(),
                "corruption {k} produced a broken tree"
            );
        }
    }
}

#[test]
fn heuristics_are_deterministic_across_runs() {
    let corpus = assembly_corpus(Scale::Small);
    for e in corpus.iter().take(4) {
        for h in Heuristic::ALL {
            let a: Schedule = h.schedule(&e.tree, 4);
            let b: Schedule = h.schedule(&e.tree, 4);
            assert_eq!(a, b, "{} {h}", e.name);
        }
    }
}
