//! Cross-crate I/O integration: the text format round-trips every tree the
//! generators produce, and the DOT export stays well-formed.

use treesched::gen::{self, assembly_corpus, Scale, WeightRange};
use treesched::model::io;

#[test]
fn text_roundtrip_across_generators() {
    let trees = vec![
        gen::random_attachment(200, WeightRange::MIXED, 5),
        gen::random_deep(150, 2, WeightRange::MIXED, 6),
        gen::caterpillar(10, 3),
        gen::spider(6, 5),
        gen::theory::inapprox_tree(3, 4),
        gen::theory::inner_first_gadget(3, 4),
        gen::theory::long_chain_tree(5, 3),
    ];
    for t in trees {
        let text = io::to_text(&t);
        let back = io::from_text(&text).expect("roundtrip parse");
        assert_eq!(t, back);
    }
}

#[test]
fn text_roundtrip_corpus_trees() {
    let corpus = assembly_corpus(Scale::Small);
    for e in corpus.iter().take(8) {
        let text = io::to_text(&e.tree);
        let back = io::from_text(&text).unwrap_or_else(|err| panic!("{}: {err}", e.name));
        assert_eq!(e.tree, back, "{}", e.name);
    }
}

#[test]
fn dot_export_well_formed() {
    let t = gen::spider(3, 2);
    let dot = io::to_dot(&t, "spider");
    assert!(dot.starts_with("digraph"));
    assert!(dot.trim_end().ends_with('}'));
    // one node line per task, one edge per non-root
    let nodes = dot.lines().filter(|l| l.contains("[label=")).count();
    let edges = dot.lines().filter(|l| l.contains("->")).count();
    assert_eq!(nodes, t.len());
    assert_eq!(edges, t.len() - 1);
}

#[test]
fn corpus_stats_are_printable() {
    let corpus = assembly_corpus(Scale::Small);
    for e in &corpus {
        let line = format!("{}: {}", e.name, e.stats());
        assert!(line.contains("nodes="));
    }
}
