//! Brute-force validation of the paper's Lemma 1: `SplitSubtrees` returns a
//! splitting whose `ParSubtrees` makespan is minimal over **all** splittings
//! of the tree into maximal subtrees.
//!
//! A splitting is any antichain `A` of subtree roots (pairwise
//! non-ancestors); `ParSubtrees` then runs the `p` heaviest subtrees of `A`
//! in parallel and everything else (surplus subtrees + all nodes outside
//! `A`'s subtrees) sequentially, for a makespan of
//! `max_A W + (W_total − Σ_{top-p} W)`.

use treesched::core::split_subtrees;
use treesched::gen::{random_attachment, WeightRange};
use treesched::model::{NodeId, TaskTree};

/// All antichains of the tree (sets of pairwise non-ancestor nodes),
/// including the singleton `{root}`; exponential, for tiny trees only.
fn antichains(tree: &TaskTree) -> Vec<Vec<NodeId>> {
    // f(v) = antichains of subtree(v) that are nonempty
    fn f(tree: &TaskTree, v: NodeId) -> Vec<Vec<NodeId>> {
        let mut out = vec![vec![v]];
        let kids = tree.children(v);
        if kids.is_empty() {
            return out;
        }
        // combine antichains of children: each child contributes either
        // nothing or one of its antichains; at least one must contribute
        let per_child: Vec<Vec<Vec<NodeId>>> = kids.iter().map(|&c| f(tree, c)).collect();
        let mut partial: Vec<Vec<NodeId>> = vec![Vec::new()];
        for opts in &per_child {
            let mut next = Vec::new();
            for base in &partial {
                next.push(base.clone()); // child contributes nothing
                for o in opts {
                    let mut with = base.clone();
                    with.extend_from_slice(o);
                    next.push(with);
                }
            }
            partial = next;
        }
        out.extend(partial.into_iter().filter(|a| !a.is_empty()));
        out
    }
    f(tree, tree.root())
}

fn splitting_cost(tree: &TaskTree, a: &[NodeId], p: usize) -> f64 {
    let w = tree.subtree_work();
    let mut ws: Vec<f64> = a.iter().map(|v| w[v.index()]).collect();
    ws.sort_by(|x, y| y.total_cmp(x));
    let top: f64 = ws.iter().take(p).sum();
    ws[0] + (tree.total_work() - top)
}

fn check_optimal_over_all_splittings(nodes: usize, seeds: u64, procs: &[usize]) {
    for seed in 0..seeds {
        let tree = random_attachment(nodes, WeightRange::MIXED, seed);
        let all = antichains(&tree);
        for &p in procs {
            let best = all
                .iter()
                .map(|a| splitting_cost(&tree, a, p))
                .fold(f64::INFINITY, f64::min);
            let split = split_subtrees(&tree, p);
            assert!(
                split.cost <= best + 1e-9,
                "seed {seed} p={p}: algorithm {} vs brute force {}",
                split.cost,
                best
            );
            // and the algorithm's cost is itself achievable (it is one of
            // the splittings)
            assert!(
                split.cost >= best - 1e-9,
                "seed {seed} p={p}: impossible cost"
            );
        }
    }
}

/// Tier-1 version: small trees so the exponential antichain enumeration
/// stays instant.
#[test]
fn split_subtrees_is_optimal_over_all_splittings() {
    check_optimal_over_all_splittings(9, 12, &[1, 2, 3, 5]);
}

/// Full-scale brute force: larger trees, more seeds, denser processor grid.
/// The antichain count grows exponentially with tree size, so this is kept
/// out of tier-1; run it with
/// `cargo test --test lemma1 -- --ignored`.
#[test]
#[ignore = "exponential brute force, run with -- --ignored"]
fn split_subtrees_is_optimal_full() {
    check_optimal_over_all_splittings(17, 64, &[1, 2, 3, 4, 6, 8, 12]);
}

#[test]
fn antichain_enumeration_sanity() {
    // fork with 2 leaves: antichains are {root}, {l1}, {l2}, {l1, l2}
    let tree = TaskTree::fork(2, 1.0, 1.0, 0.0);
    let all = antichains(&tree);
    assert_eq!(all.len(), 4);
    // chain of 3: one antichain per node
    let tree = TaskTree::chain(3, 1.0, 1.0, 0.0);
    assert_eq!(antichains(&tree).len(), 3);
}
