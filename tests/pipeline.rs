//! End-to-end integration: sparse matrix → ordering → elimination tree →
//! assembly tree → parallel heuristics → validated schedules and bounds.

use treesched::core::{
    evaluate, makespan_lower_bound, memory_lower_bound_exact, memory_reference, Heuristic,
};
use treesched::gen::{assembly_corpus, Scale};
use treesched::model::ValidateExt;
use treesched::sparse::{assembly, etree, generate, ordering};

#[test]
fn full_pipeline_grid_to_schedules() {
    let pattern = generate::grid2d(12, 12, generate::Stencil::Star);
    let ord = ordering::min_degree(&pattern);
    let permuted = pattern.permute(&ord.order);
    let et = etree::elimination_tree(&permuted);
    let cc = etree::column_counts(&permuted, &et);
    for limit in [1u32, 4] {
        let tree = assembly::assembly_tree_from_etree(&et, &cc, limit).expect("connected");
        tree.validate().expect("valid assembly tree");
        for p in [2u32, 8] {
            for h in Heuristic::ALL {
                let s = h.schedule(&tree, p);
                s.validate(&tree)
                    .unwrap_or_else(|e| panic!("{h} p={p}: {e}"));
                let ev = evaluate(&tree, &s);
                assert!(ev.makespan >= makespan_lower_bound(&tree, p) - 1e-9);
                assert!(ev.peak_memory >= memory_lower_bound_exact(&tree) - 1e-6);
            }
        }
    }
}

#[test]
fn corpus_scenarios_all_valid_and_bounded() {
    let corpus = assembly_corpus(Scale::Small);
    for e in &corpus {
        let tree = &e.tree;
        let mem_exact = memory_lower_bound_exact(tree);
        let mem_ref = memory_reference(tree);
        assert!(mem_exact <= mem_ref + 1e-9, "{}", e.name);
        for p in [2u32, 16] {
            let lb = makespan_lower_bound(tree, p);
            for h in Heuristic::ALL {
                let ev = evaluate(tree, &h.schedule(tree, p));
                assert!(ev.makespan >= lb - 1e-9 * lb, "{} {h} p={p}", e.name);
                assert!(
                    ev.peak_memory >= mem_exact - 1e-9 * mem_exact,
                    "{} {h} p={p}: parallel memory {} below sequential optimum {}",
                    e.name,
                    ev.peak_memory,
                    mem_exact
                );
            }
        }
    }
}

#[test]
fn par_subtrees_memory_guarantee_on_corpus() {
    // paper §5.1: M ≤ (p+1) · M_seq
    let corpus = assembly_corpus(Scale::Small);
    for e in &corpus {
        let mseq = memory_reference(&e.tree);
        for p in [2u32, 4, 8] {
            let ev = evaluate(&e.tree, &Heuristic::ParSubtrees.schedule(&e.tree, p));
            assert!(
                ev.peak_memory <= (p as f64 + 1.0) * mseq * (1.0 + 1e-9),
                "{} p={p}: {} > {}",
                e.name,
                ev.peak_memory,
                (p as f64 + 1.0) * mseq
            );
        }
    }
}

#[test]
fn list_schedulers_meet_graham_bound_on_corpus() {
    // §5.2/§5.3: ParInnerFirst and ParDeepestFirst are list schedulers,
    // hence (2 − 1/p)-approximations of the optimal makespan; since
    // Cmax* ≥ LB, their makespan is ≤ (2 − 1/p) · Cmax* which we can only
    // check against the achievable bound W/p + CP (list scheduling bound).
    let corpus = assembly_corpus(Scale::Small);
    for e in &corpus {
        let tree = &e.tree;
        let w = tree.total_work();
        let cp = tree.critical_path();
        for p in [2u32, 8, 32] {
            for h in [Heuristic::ParInnerFirst, Heuristic::ParDeepestFirst] {
                let ev = evaluate(tree, &h.schedule(tree, p));
                let list_bound = w / p as f64 + cp * (1.0 - 1.0 / p as f64);
                assert!(
                    ev.makespan <= list_bound * (1.0 + 1e-9),
                    "{} {h} p={p}: {} > {}",
                    e.name,
                    ev.makespan,
                    list_bound
                );
            }
        }
    }
}

#[test]
fn single_processor_all_heuristics_sequentialize() {
    let corpus = assembly_corpus(Scale::Small);
    for e in corpus.iter().take(8) {
        let tree = &e.tree;
        for h in Heuristic::ALL {
            let ev = evaluate(tree, &h.schedule(tree, 1));
            assert!(
                (ev.makespan - tree.total_work()).abs() <= 1e-9 * tree.total_work(),
                "{} {h}",
                e.name
            );
        }
    }
}

#[test]
fn facade_reexports_work() {
    // the facade crate exposes the whole pipeline under one namespace
    let tree = treesched::TaskTree::fork(4, 1.0, 1.0, 0.0);
    let stats = treesched::TreeStats::of(&tree);
    assert_eq!(stats.nodes, 5);
    let r = treesched::seq::best_postorder(&tree);
    assert_eq!(r.peak, 5.0);
    let s = treesched::core::Heuristic::ParSubtrees.schedule(&tree, 2);
    assert!(s.validate(&tree).is_ok());
}
