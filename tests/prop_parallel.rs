//! Property-based integration tests of the parallel heuristics on random
//! trees: schedule validity, lower-bound respect, approximation guarantees,
//! and the memory-capped scheduler's safety theorem.

use proptest::prelude::*;
use treesched::core::{
    evaluate, makespan_lower_bound, mem_bounded_schedule, memory_lower_bound_exact,
    memory_reference, Admission, Heuristic,
};
use treesched::model::TaskTree;
use treesched::seq::best_postorder;

/// Random tree strategy: parent vector with `parents[i] < i`, strictly
/// positive works (the memory ≥ sequential-optimum theorem needs `w > 0`).
fn arb_tree(max_nodes: usize) -> impl Strategy<Value = TaskTree> {
    (2..=max_nodes)
        .prop_flat_map(move |n| {
            let parents: Vec<BoxedStrategy<usize>> = (1..n).map(|i| (0..i).boxed()).collect();
            let weights = proptest::collection::vec((1u32..=9, 0u32..=9, 0u32..=6), n);
            (parents, weights)
        })
        .prop_map(|(parents, weights)| {
            let n = parents.len() + 1;
            let pvec: Vec<Option<usize>> = std::iter::once(None)
                .chain(parents.into_iter().map(Some))
                .collect();
            let work: Vec<f64> = (0..n).map(|i| weights[i].0 as f64).collect();
            let output: Vec<f64> = (0..n).map(|i| weights[i].1 as f64).collect();
            let exec: Vec<f64> = (0..n).map(|i| weights[i].2 as f64).collect();
            TaskTree::from_parents(&pvec, &work, &output, &exec).expect("valid tree")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn heuristics_produce_valid_bounded_schedules(
        t in arb_tree(40),
        p in 1u32..=9,
    ) {
        let mem_lb = memory_lower_bound_exact(&t);
        let ms_lb = makespan_lower_bound(&t, p);
        for h in Heuristic::ALL {
            let s = h.schedule(&t, p);
            prop_assert!(s.validate(&t).is_ok(), "{h}: invalid schedule");
            prop_assert!(s.max_concurrency() <= p as usize, "{h}: too many procs");
            let ev = evaluate(&t, &s);
            prop_assert!(ev.makespan >= ms_lb - 1e-9, "{h}: below makespan LB");
            prop_assert!(
                ev.peak_memory >= mem_lb - 1e-9,
                "{h}: memory {} below sequential optimum {}",
                ev.peak_memory, mem_lb
            );
        }
    }

    #[test]
    fn par_subtrees_memory_bound(t in arb_tree(40), p in 1u32..=8) {
        let mseq = memory_reference(&t);
        let ev = evaluate(&t, &Heuristic::ParSubtrees.schedule(&t, p));
        prop_assert!(
            ev.peak_memory <= (p as f64 + 1.0) * mseq + 1e-9,
            "{} > (p+1)·{}", ev.peak_memory, mseq
        );
    }

    #[test]
    fn list_schedulers_graham_bound(t in arb_tree(40), p in 2u32..=8) {
        let bound = t.total_work() / p as f64
            + t.critical_path() * (1.0 - 1.0 / p as f64);
        for h in [Heuristic::ParInnerFirst, Heuristic::ParDeepestFirst] {
            let ev = evaluate(&t, &h.schedule(&t, p));
            prop_assert!(ev.makespan <= bound + 1e-9, "{h}: {} > {}", ev.makespan, bound);
        }
    }

    #[test]
    fn par_subtrees_makespan_equals_predicted_cost(t in arb_tree(40), p in 1u32..=8) {
        let split = treesched::core::split_subtrees(&t, p as usize);
        let ev = evaluate(&t, &Heuristic::ParSubtrees.schedule(&t, p));
        prop_assert!(
            (ev.makespan - split.cost).abs() <= 1e-9 * (1.0 + split.cost),
            "realized {} vs predicted {}", ev.makespan, split.cost
        );
    }

    #[test]
    fn membound_sequential_policy_safety(t in arb_tree(36), p in 1u32..=8) {
        let seq = best_postorder(&t);
        let run = mem_bounded_schedule(&t, p, &seq.order, seq.peak, Admission::SequentialOrder);
        prop_assert_eq!(run.violations, 0, "cap = M_seq must be honored");
        prop_assert!(run.peak_memory <= seq.peak + 1e-9);
        prop_assert!(run.schedule.validate(&t).is_ok());
        prop_assert_eq!(run.peak_memory, run.schedule.peak_memory(&t));
    }

    #[test]
    fn membound_peak_matches_sweep(t in arb_tree(30), p in 1u32..=6) {
        // the incremental resident accounting inside the capped scheduler
        // must agree with the independent event sweep, at any cap
        let seq = best_postorder(&t);
        for cap in [f64::INFINITY, seq.peak * 1.5, seq.peak * 0.5] {
            for policy in [Admission::SequentialOrder, Admission::Greedy] {
                let run = mem_bounded_schedule(&t, p, &seq.order, cap, policy);
                prop_assert!(
                    (run.peak_memory - run.schedule.peak_memory(&t)).abs() < 1e-6,
                    "{policy:?} cap={cap}: {} vs {}",
                    run.peak_memory, run.schedule.peak_memory(&t)
                );
            }
        }
    }

    #[test]
    fn sequentialization_theorem(t in arb_tree(40), p in 2u32..=8) {
        // ordering any parallel schedule's tasks by start time yields a
        // sequential traversal whose peak is at most the parallel peak —
        // the argument behind "more processors never need less memory than
        // the sequential optimum" (requires w > 0, which arb_tree ensures)
        for h in Heuristic::ALL {
            let s = h.schedule(&t, p);
            let mut order: Vec<_> = t.ids().collect();
            order.sort_by(|&a, &b| {
                s.placement(a).start.total_cmp(&s.placement(b).start).then(a.cmp(&b))
            });
            let seq_peak = treesched::seq::peak_of_order(&t, &order)
                .expect("start-time order is topological");
            prop_assert!(
                seq_peak <= s.peak_memory(&t) + 1e-9,
                "{h}: sequentialized {} > parallel {}",
                seq_peak, s.peak_memory(&t)
            );
        }
    }

    #[test]
    fn more_processors_never_hurt_par_subtrees_makespan(t in arb_tree(40)) {
        let mut prev = f64::INFINITY;
        for p in [1u32, 2, 4, 8, 16] {
            let ev = evaluate(&t, &Heuristic::ParSubtrees.schedule(&t, p));
            prop_assert!(ev.makespan <= prev + 1e-9, "p={p}: {} > {}", ev.makespan, prev);
            prev = ev.makespan;
        }
    }
}
