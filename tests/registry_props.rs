//! Registry-driven property suite: **every** scheduler in the standard
//! registry — paper heuristics, baselines, memory-capped wrappers, present
//! and future — must, on random trees and assembly corpus trees,
//!
//! * produce a schedule that validates (checked by the API itself and
//!   re-checked here),
//! * meet the makespan lower bound `max(W/p, CP)`,
//! * meet the exact sequential memory lower bound (Liu's algorithm),
//!
//! and every canonical name must round-trip through the registry. Because
//! the suite iterates the registry, a newly registered scheduler is
//! covered automatically with zero test changes.

use treesched::core::api::{Platform, ProcClass, Request, SchedError, SchedulerRegistry, Scratch};
use treesched::core::{
    makespan_lower_bound, makespan_lower_bound_on, memory_lower_bound_exact, memory_reference,
};
use treesched::gen::{assembly_corpus, caterpillar, random_attachment, spider, Scale, WeightRange};
use treesched::model::TaskTree;

const EPS: f64 = 1e-9;

/// A deterministic mixed bag of tree shapes, small enough for the `O(n²)`
/// exact memory bound.
fn tree_zoo() -> Vec<(String, TaskTree)> {
    let mut zoo: Vec<(String, TaskTree)> = vec![
        ("fork".into(), TaskTree::fork(13, 1.0, 1.0, 0.0)),
        ("chain".into(), TaskTree::chain(21, 2.0, 1.0, 0.5)),
        ("complete".into(), TaskTree::complete(3, 4, 1.0, 2.0, 0.5)),
        ("spider".into(), spider(6, 5)),
        ("caterpillar".into(), caterpillar(12, 3)),
    ];
    for seed in [1u64, 7, 42] {
        zoo.push((
            format!("random-{seed}"),
            random_attachment(300, WeightRange::MIXED, seed),
        ));
    }
    for e in assembly_corpus(Scale::Small).into_iter().step_by(5) {
        if e.tree.len() <= 2500 {
            zoo.push((e.name, e.tree));
        }
    }
    zoo
}

#[test]
fn every_registered_scheduler_respects_both_lower_bounds() {
    let registry = SchedulerRegistry::standard();
    let mut scratch = Scratch::new();
    for (name, tree) in tree_zoo() {
        let ms_lbs: Vec<(u32, f64)> = [1u32, 2, 4, 8]
            .iter()
            .map(|&p| (p, makespan_lower_bound(&tree, p)))
            .collect();
        let mem_lb = memory_lower_bound_exact(&tree);
        // a cap at the sequential reference keeps the capped schedulers
        // honest and is ignored by the uncapped ones
        let cap = memory_reference(&tree);
        for entry in registry.iter() {
            for &(p, ms_lb) in &ms_lbs {
                let req = Request::new(&tree, Platform::new(p).with_memory_cap(cap));
                let out = entry
                    .scheduler()
                    .schedule(&req, &mut scratch)
                    .unwrap_or_else(|e| panic!("{}: {name} p={p}: {e}", entry.name()));
                assert!(
                    out.schedule.validate(&tree).is_ok(),
                    "{}: {name} p={p}: invalid schedule",
                    entry.name()
                );
                assert!(
                    out.eval.makespan >= ms_lb - EPS,
                    "{}: {name} p={p}: makespan {} < lower bound {ms_lb}",
                    entry.name(),
                    out.eval.makespan
                );
                assert!(
                    out.eval.peak_memory >= mem_lb - EPS,
                    "{}: {name} p={p}: memory {} < exact lower bound {mem_lb}",
                    entry.name(),
                    out.eval.peak_memory
                );
            }
        }
    }
}

#[test]
fn campaign_schedulers_work_without_a_memory_cap() {
    let registry = SchedulerRegistry::standard();
    let mut scratch = Scratch::new();
    let tree = random_attachment(200, WeightRange::PEBBLE, 3);
    for entry in registry.campaign() {
        let req = Request::new(&tree, Platform::new(4));
        let out = entry.scheduler().schedule(&req, &mut scratch).unwrap();
        assert!(out.eval.makespan > 0.0, "{}", entry.name());
        assert_eq!(
            out.diagnostics.seq_peak,
            Some(memory_reference(&tree)),
            "{}: diagnostics carry the memory reference",
            entry.name()
        );
    }
}

/// The backward-compatibility pin of the heterogeneous-platform redesign:
/// a platform of all-1.0 speeds split across two classes with one
/// all-covering memory domain must drive **every campaign scheduler** to
/// the exact same [`treesched::core::Schedule`] as the homogeneous
/// spelling, on the whole tree zoo.
#[test]
fn campaign_on_uniform_heterogeneous_platform_matches_homogeneous_exactly() {
    let registry = SchedulerRegistry::standard();
    let mut scratch = Scratch::new();
    for (name, tree) in tree_zoo() {
        let cap = memory_reference(&tree);
        for p in [2u32, 4, 8] {
            let uniform =
                Platform::heterogeneous(vec![ProcClass::new(1, 1.0), ProcClass::new(p - 1, 1.0)])
                    .with_domain(cap, &[0, 1]);
            assert_eq!(
                makespan_lower_bound_on(&tree, &uniform),
                makespan_lower_bound(&tree, p),
                "{name} p={p}: bounds must agree on uniform platforms"
            );
            let flat = Platform::new(p).with_memory_cap(cap);
            for entry in registry.campaign() {
                let het = entry
                    .scheduler()
                    .schedule(&Request::new(&tree, uniform.clone()), &mut scratch)
                    .unwrap_or_else(|e| panic!("{}: {name} p={p}: {e}", entry.name()));
                let hom = entry
                    .scheduler()
                    .schedule(&Request::new(&tree, flat.clone()), &mut scratch)
                    .unwrap();
                assert_eq!(het.schedule, hom.schedule, "{}: {name} p={p}", entry.name());
                assert_eq!(het.eval, hom.eval, "{}: {name} p={p}", entry.name());
            }
        }
    }
}

/// Every registered scheduler must handle a genuinely heterogeneous
/// platform (2 fast + 2 slow processors, two memory domains): a schedule
/// that validates speed-aware, respects the speed-aware makespan bound,
/// and reports one peak per domain — no scheduler refuses comm-free
/// heterogeneous platforms anymore. With transfer costs on top, each
/// scheduler either serves comm-aware or surfaces a typed
/// [`SchedError::UnsupportedPlatform`] — never a panic, never a silently
/// mis-scheduled result.
#[test]
fn every_registered_scheduler_handles_heterogeneous_platforms_or_refuses() {
    let registry = SchedulerRegistry::standard();
    let mut scratch = Scratch::new();
    let mut comm_supported = 0usize;
    let mut comm_refused = 0usize;
    for (name, tree) in tree_zoo() {
        let cap = memory_reference(&tree);
        let platform =
            Platform::heterogeneous(vec![ProcClass::new(2, 2.0), ProcClass::new(2, 1.0)])
                .with_domain(2.0 * cap, &[0])
                .with_domain(2.0 * cap, &[1]);
        let ms_lb = makespan_lower_bound_on(&tree, &platform);
        let mem_lb = memory_lower_bound_exact(&tree);
        for entry in registry.iter() {
            let req = Request::new(&tree, platform.clone());
            let out = entry
                .scheduler()
                .schedule(&req, &mut scratch)
                .unwrap_or_else(|e| panic!("{}: {name}: {e}", entry.name()));
            assert!(
                out.schedule.validate_on(&tree, &platform).is_ok(),
                "{}: {name}: invalid heterogeneous schedule",
                entry.name()
            );
            assert!(
                out.eval.makespan >= ms_lb - EPS,
                "{}: {name}: makespan {} < speed-aware bound {ms_lb}",
                entry.name(),
                out.eval.makespan
            );
            assert!(
                out.eval.peak_memory >= mem_lb - EPS,
                "{}: {name}: memory below the sequential optimum",
                entry.name()
            );
            assert_eq!(
                out.domain_peaks.len(),
                2,
                "{}: {name}: one peak per domain",
                entry.name()
            );
        }
        // transfer costs split the registry: list schedulers delay
        // cross-domain dependencies, the subtree/capped families refuse
        let costly = platform.clone().with_comm(vec![0.0, 1.5, 1.5, 0.0]);
        let comm_lb = makespan_lower_bound_on(&tree, &costly);
        for entry in registry.iter() {
            let req = Request::new(&tree, costly.clone());
            match entry.scheduler().schedule(&req, &mut scratch) {
                Ok(out) => {
                    comm_supported += 1;
                    assert!(
                        out.schedule.validate_on(&tree, &costly).is_ok(),
                        "{}: {name}: schedule ignores transfer costs",
                        entry.name()
                    );
                    assert!(
                        out.eval.makespan >= comm_lb - EPS,
                        "{}: {name}: comm makespan below the bound",
                        entry.name()
                    );
                }
                Err(SchedError::UnsupportedPlatform { .. }) => comm_refused += 1,
                Err(e) => panic!("{}: {name}: unexpected error {e}", entry.name()),
            }
        }
    }
    assert!(
        comm_supported > 0,
        "the list schedulers must serve transfer costs"
    );
    assert!(
        comm_refused > 0,
        "subtree/capped schedulers must refuse transfer costs, typed"
    );
}

/// The compatibility pin of the communication-cost redesign: an all-zero
/// comm matrix is the same machine as no matrix at all, so **every**
/// registered scheduler must produce the byte-identical schedule and
/// evaluation for both spellings, across the whole tree zoo.
#[test]
fn zero_comm_matrix_is_byte_identical_across_the_registry() {
    let registry = SchedulerRegistry::standard();
    let mut scratch = Scratch::new();
    for (name, tree) in tree_zoo() {
        let cap = memory_reference(&tree);
        let bare = Platform::heterogeneous(vec![ProcClass::new(2, 2.0), ProcClass::new(2, 1.0)])
            .with_domain(2.0 * cap, &[0])
            .with_domain(2.0 * cap, &[1]);
        let zeroed = bare.clone().with_comm(vec![0.0; 4]);
        assert!(!zeroed.has_comm(), "all-zero matrix means free transfers");
        for entry in registry.iter() {
            let with = entry
                .scheduler()
                .schedule(&Request::new(&tree, zeroed.clone()), &mut scratch)
                .unwrap_or_else(|e| panic!("{}: {name}: {e}", entry.name()));
            let without = entry
                .scheduler()
                .schedule(&Request::new(&tree, bare.clone()), &mut scratch)
                .unwrap();
            assert_eq!(
                with.schedule,
                without.schedule,
                "{}: {name}: zero comm matrix changed the schedule",
                entry.name()
            );
            assert_eq!(with.eval, without.eval, "{}: {name}", entry.name());
        }
    }
}

#[test]
fn registry_names_round_trip() {
    let registry = SchedulerRegistry::standard();
    for entry in registry.iter() {
        assert_eq!(registry.get(entry.name()).unwrap().name(), entry.name());
        for alias in entry.aliases() {
            assert_eq!(registry.get(alias).unwrap().name(), entry.name());
        }
    }
}

/// Every scheduler registered with `campaign = true` must appear in a
/// minimal default-selection [`treesched::bench::CampaignRunner`] run —
/// the registry flag *is* the membership mechanism of Table 1 / Figs. 6–8,
/// so a campaign scheduler that the runner skips would silently drop out
/// of every table and figure. Heterogeneous platform points must either
/// serve (with one peak per domain) or surface
/// [`SchedError::UnsupportedPlatform`] as typed error *records* — never
/// panic, never abort the run.
#[test]
fn every_campaign_scheduler_appears_in_a_minimal_campaign_run() {
    use treesched::bench::{CampaignRunner, CampaignSpec, PlatformPoint};
    use treesched::core::api::PlatformSpec;

    let spec = CampaignSpec::new("minimal")
        .with_tree("complete", TaskTree::complete(2, 4, 1.0, 2.0, 0.5))
        .with_procs(&[2])
        .with_platform(PlatformPoint::from_spec(
            PlatformSpec::parse_flags("1x2.0,1x1.0", Some("1e9@0,1e9@1"), None).unwrap(),
        ));
    let mut runner = CampaignRunner::new(2);
    let campaign = runner.run(&spec).expect("default selection resolves");

    let registry = SchedulerRegistry::standard();
    let members: Vec<&str> = registry.campaign().map(|e| e.name()).collect();
    assert!(!members.is_empty());
    for name in &members {
        // flat point: every campaign member serves and succeeds
        let flat = campaign
            .records
            .iter()
            .find(|r| r.scheduler == *name && r.point == "p2")
            .unwrap_or_else(|| panic!("{name}: campaign member missing from the run"));
        assert!(flat.outcome.is_ok(), "{name}: flat scenario must serve");
        // hetero point: present, and either serves or refuses typed
        let het = campaign
            .records
            .iter()
            .find(|r| r.scheduler == *name && r.point != "p2")
            .unwrap_or_else(|| panic!("{name}: member missing from the hetero point"));
        match &het.outcome {
            Ok(out) => {
                assert_eq!(
                    out.domain_peaks.len(),
                    2,
                    "{name}: one peak per declared domain"
                );
                assert!(out.makespan >= out.ms_lb - EPS, "{name}");
            }
            Err(SchedError::UnsupportedPlatform { .. }) => {}
            Err(e) => panic!("{name}: hetero point must serve or refuse typed, got {e}"),
        }
    }
    // exactly the campaign set, nothing else, in registry order per point
    let first_point: Vec<&str> = campaign
        .records
        .iter()
        .filter(|r| r.point == "p2")
        .map(|r| r.scheduler.as_str())
        .collect();
    assert_eq!(first_point, members);
    // the JSONL stream renders both shapes without panicking
    let jsonl = campaign.to_jsonl();
    assert_eq!(jsonl.lines().count(), campaign.records.len());
}
