//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, API-compatible subset of `criterion` 0.5: benchmark groups,
//! `bench_with_input` / `bench_function`, `BenchmarkId`, `Throughput`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple — one warm-up call, then timed
//! iterations until a small per-benchmark wall-clock budget (default 100 ms,
//! `TREESCHED_BENCH_MS` overrides) or an iteration cap is reached; the mean
//! is printed as `group/id: <time> (<iters> iters[, throughput])`. There is
//! no statistical analysis, outlier rejection, or HTML report; the numbers
//! are indicative. The stub exists so `cargo bench` compiles and produces
//! usable relative timings offline.

use std::time::{Duration, Instant};

/// Per-benchmark wall-clock budget.
fn time_budget() -> Duration {
    let ms = std::env::var("TREESCHED_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100u64);
    Duration::from_millis(ms)
}

/// Throughput annotation attached to a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    budget: Duration,
    max_iters: u64,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    fn new(budget: Duration, max_iters: u64) -> Self {
        Bencher {
            budget,
            max_iters,
            elapsed: Duration::ZERO,
            iters: 0,
        }
    }

    /// Times repeated calls of `f` (one warm-up call, then measured
    /// iterations until the budget or iteration cap is hit).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let start = Instant::now();
        loop {
            std::hint::black_box(f());
            self.iters += 1;
            self.elapsed = start.elapsed();
            if self.elapsed >= self.budget || self.iters >= self.max_iters {
                break;
            }
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Caps measured iterations per benchmark (upstream: statistical sample
    /// count; here: iteration cap on the timing loop).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Sets the throughput annotation reported with each result.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new(time_budget(), self.sample_size);
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Benchmarks a no-input closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(time_budget(), self.sample_size);
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Finishes the group (upstream renders the summary here; the stub
    /// prints per-benchmark lines eagerly, so this is a no-op).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let mean = if b.iters > 0 {
            b.elapsed / b.iters as u32
        } else {
            Duration::ZERO
        };
        let mut line = format!(
            "{}/{}: {} ({} iters",
            self.name,
            id.id,
            format_duration(mean),
            b.iters
        );
        if !mean.is_zero() {
            match self.throughput {
                Some(Throughput::Elements(n)) => {
                    let per_sec = n as f64 / mean.as_secs_f64();
                    line.push_str(&format!(", {:.3e} elem/s", per_sec));
                }
                Some(Throughput::Bytes(n)) => {
                    let per_sec = n as f64 / mean.as_secs_f64();
                    line.push_str(&format!(", {:.3e} B/s", per_sec));
                }
                None => {}
            }
        }
        line.push(')');
        println!("{line}");
    }
}

/// Top-level harness handle, one per `criterion_group!`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("bench");
        g.bench_function(name, f);
        self
    }
}

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_respects_caps() {
        std::env::set_var("TREESCHED_BENCH_MS", "5");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        let mut calls = 0u64;
        g.bench_with_input(BenchmarkId::new("f", 1), &2u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            });
        });
        g.finish();
        // 1 warm-up + at most sample_size measured calls
        assert!((2..=4).contains(&calls), "calls {calls}");
    }
}
