//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::Range;
use rand::Rng as _;

/// Number-of-elements specification accepted by [`vec()`]: an exact `usize`
/// or a `Range<usize>`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn exact_and_ranged_sizes() {
        let mut rng = TestRng::seed_from_u64(3);
        let fixed = vec(0u32..10, 5usize);
        assert_eq!(fixed.generate(&mut rng).len(), 5);
        let ranged = vec(0u32..10, 2..6);
        for _ in 0..100 {
            let v = ranged.generate(&mut rng);
            assert!((2..6).contains(&v.len()), "len {}", v.len());
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
