//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, API-compatible subset of `proptest` 1.x covering the surface the
//! `treesched` test suites use:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_flat_map`, `boxed`;
//! * strategies for integer ranges, tuples (arity ≤ 6), `Vec<S>`,
//!   [`strategy::Just`], and string patterns (approximated — see
//!   [`strategy::StrPattern`]);
//! * [`collection::vec`] with exact or ranged sizes;
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, plus
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`];
//! * [`test_runner::ProptestConfig`] (`with_cases`, `cases`, `seed`).
//!
//! **Determinism.** Unlike upstream proptest (which seeds from OS entropy
//! unless told otherwise), this stub derives every case's RNG from
//! `ProptestConfig::seed` (default [`test_runner::DEFAULT_SEED`], overridable
//! via the `PROPTEST_SEED` env var), the test-function name, and the case
//! index. Runs are therefore bit-for-bit reproducible in CI by construction.
//! Failure messages print the case number and seed needed to replay.
//!
//! **No shrinking.** On failure the stub reports the case immediately rather
//! than searching for a minimal counterexample; the deterministic seed makes
//! the failing input reproducible, which is what the tier-1 suites need.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a `proptest!` body; on failure the current
/// case returns an error (no panic mid-case, matching upstream semantics).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), l, r
        );
    }};
}

/// Inequality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{}\n  both: {:?}",
            format!($($fmt)*), l
        );
    }};
}

/// Skips the current case when its precondition does not hold.
///
/// The stub counts an assumed-away case as passed instead of drawing a
/// replacement input (upstream rejects and retries); the suites using it
/// only filter out a small fraction of inputs, so coverage is preserved.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// item expands to a `#[test]`-able function running `config.cases`
/// deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            $crate::test_runner::run(&config, stringify!($name), |__proptest_rng| {
                $crate::__proptest_bind!(__proptest_rng; $($args)*);
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), $rng);
    };
    ($rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind! { $rng; $($rest)* }
    };
}
