//! The [`Strategy`] trait and the built-in strategies the workspace uses.

use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};
use rand::Rng as _;

/// A generator of random values. Stub counterpart of proptest's `Strategy`:
/// same combinator names, but generation is direct (no shrink trees).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derives a second strategy from each generated value (dependent
    /// generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// A fixed-shape collection of strategies generates element-wise (used for
/// `Vec<BoxedStrategy<_>>` in the tree-shape strategies).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// String-pattern strategies, approximated.
///
/// Upstream proptest interprets `&str` strategies as regexes. This stub
/// ignores the pattern's structure and generates arbitrary short strings
/// over a pool mixing ASCII printables, whitespace/control characters,
/// digits-and-separator-heavy fragments, and multibyte code points — a
/// superset of what `\PC*`-style fuzz patterns aim at (robustness of
/// parsers against arbitrary garbage). Marker type so the choice is
/// documented in one place.
pub struct StrPattern;

const CHAR_POOL: &[char] = &[
    ' ', '\t', '\n', '\r', '0', '1', '9', '-', '+', '.', 'e', 'a', 'z', 'A', 'Z', '_', '#', '%',
    '"', '\'', '\\', '/', '\u{0}', '\u{7}', 'é', 'λ', '中', '🌳', '\u{202e}', '\u{fffd}',
];

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.gen_range(0usize..=64);
        (0..len)
            .map(|_| {
                // half the draws come from the adversarial pool, half are
                // arbitrary printable ASCII
                if rng.gen_range(0u32..2) == 0 {
                    CHAR_POOL[rng.gen_range(0..CHAR_POOL.len())]
                } else {
                    char::from(rng.gen_range(0x20u8..0x7f))
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;
    use rand::SeedableRng;

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::seed_from_u64(5);
        let strat = (1usize..=4)
            .prop_flat_map(|n| {
                let elems: Vec<BoxedStrategy<usize>> = (0..n).map(|i| (0..i + 1).boxed()).collect();
                (Just(n), elems)
            })
            .prop_map(|(n, v)| (n, v.len(), v));
        for _ in 0..200 {
            let (n, len, v) = strat.generate(&mut rng);
            assert_eq!(n, len);
            for (i, &x) in v.iter().enumerate() {
                assert!(x <= i);
            }
        }
    }

    #[test]
    fn str_pattern_generates_varied_strings() {
        let mut rng = TestRng::seed_from_u64(9);
        let lens: Vec<usize> = (0..50).map(|_| "\\PC*".generate(&mut rng).len()).collect();
        assert!(lens.contains(&0) || lens.iter().any(|&l| l > 10));
    }
}
