//! Configuration and the deterministic case runner.

pub use rand::rngs::StdRng as TestRng;
use rand::SeedableRng;

/// Fixed default seed: every CI run generates the same inputs unless
/// `PROPTEST_SEED` overrides it.
pub const DEFAULT_SEED: u64 = 0x5EED_1234_ABCD_0001;

/// Runner configuration. Field-compatible subset of upstream
/// `ProptestConfig` plus an explicit `seed` (upstream buries the seed in its
/// failure-persistence machinery; the stub makes it first-class so tier-1
/// runs are reproducible by construction).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Base seed; combined with the property name and case index.
    pub seed: u64,
}

impl ProptestConfig {
    /// `ProptestConfig { cases, ..Default::default() }`.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_SEED);
        ProptestConfig { cases, seed }
    }
}

/// A failed property case (produced by `prop_assert!` and friends).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs `config.cases` deterministic cases of one property. The per-case RNG
/// seed mixes the base seed, the property name, and the case index, so every
/// property sees an independent but fully reproducible stream.
pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    for i in 0..config.cases {
        let case_seed = config
            .seed
            .wrapping_add(fnv1a(name))
            .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = TestRng::seed_from_u64(case_seed);
        if let Err(e) = case(&mut rng) {
            panic!(
                "property `{name}` failed at case {i}/{} (base seed {:#x}; rerun with \
                 PROPTEST_SEED={} to reproduce):\n{e}",
                config.cases, config.seed, config.seed,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_runs_exactly_cases_times() {
        let mut n = 0;
        run(&ProptestConfig { cases: 17, seed: 1 }, "counter", |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 17);
    }

    #[test]
    fn same_config_same_stream() {
        use rand::Rng as _;
        let collect = |seed: u64| {
            let mut v = Vec::new();
            run(&ProptestConfig { cases: 5, seed }, "stream", |rng| {
                v.push(rng.gen_range(0u64..1_000_000));
                Ok(())
            });
            v
        };
        assert_eq!(collect(9), collect(9));
        assert_ne!(collect(9), collect(10));
    }

    #[test]
    #[should_panic(expected = "property `boom` failed at case 3")]
    fn failure_reports_case_index() {
        let mut i = 0;
        run(&ProptestConfig { cases: 10, seed: 2 }, "boom", |_| {
            i += 1;
            if i == 4 {
                Err(TestCaseError::fail("nope"))
            } else {
                Ok(())
            }
        });
    }
}
