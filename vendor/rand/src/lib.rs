//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, API-compatible subset of `rand` 0.8 covering exactly what the
//! `treesched` crates use:
//!
//! * [`rngs::StdRng`] — a deterministic, seedable generator (SplitMix64);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over half-open and inclusive integer ranges.
//!
//! The generator is **not** cryptographic and intentionally differs from the
//! real `StdRng` stream (ChaCha12); everything downstream only relies on
//! determinism per seed, which this guarantees. Range sampling uses
//! rejection to stay unbiased, so empirical-distribution tests (e.g. the
//! average off-diagonal density checks in `treesched_sparse`) behave as they
//! would with the real crate.

use core::ops::{Range, RangeInclusive};

/// Minimal core-RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose entire stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`lo..hi` or `lo..=hi`).
    ///
    /// Panics on empty ranges, matching the real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform draw from `0..span` (`span == 0` means the full `u64`
/// domain). Rejection sampling avoids modulo bias.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Accept v < limit where limit is the largest multiple of span <= 2^64;
    // limit == 0 encodes "span divides 2^64 exactly" (accept everything).
    let limit = 0u64.wrapping_sub(((u64::MAX % span) + 1) % span);
    loop {
        let v = rng.next_u64();
        if limit == 0 || v < limit {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // two's-complement wrapping subtraction gives the span for
                // signed and unsigned types alike
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                // span == 0 encodes the full domain (hi - lo + 1 == 2^64)
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic seedable RNG (SplitMix64). Stand-in for `rand`'s
    /// `StdRng`; same trait surface, different (but fixed) stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014) — passes BigCrush, one
            // u64 of state, trivially seedable.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..=u64::MAX)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..=u64::MAX)).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..=u64::MAX)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(0..7);
            assert!(x < 7);
            let y: u64 = rng.gen_range(3..=9);
            assert!((3..=9).contains(&y));
            let z: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: usize = rng.gen_range(3..3);
    }
}
